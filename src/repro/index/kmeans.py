"""K-means clustering — the coarse quantizer of every IVF index.

The paper (Sec. 3.1): "The K-means clustering algorithm is commonly
used to construct the codebook C where each codeword is the centroid."
This is a vectorized Lloyd's algorithm with k-means++ seeding, chunked
assignment (so memory stays bounded on large n), and empty-cluster
repair by splitting the largest cluster.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metrics.dense import l2_squared_pairwise
from repro.utils import ensure_matrix, ensure_positive

_ASSIGN_CHUNK = 8192


def _kmeans_pp_init(
    vectors: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(vectors)
    centroids = np.empty((n_clusters, vectors.shape[1]), dtype=np.float32)
    first = int(rng.integers(n))
    centroids[0] = vectors[first]
    closest = l2_squared_pairwise(vectors, centroids[0:1])[:, 0]
    for i in range(1, n_clusters):
        total = float(closest.sum())
        if total <= 0:
            # All points coincide with chosen centroids; sample uniformly.
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centroids[i] = vectors[pick]
        dist_new = l2_squared_pairwise(vectors, centroids[i : i + 1])[:, 0]
        np.minimum(closest, dist_new, out=closest)
    return centroids


def assign_to_centroids(
    vectors: np.ndarray, centroids: np.ndarray, chunk: int = _ASSIGN_CHUNK
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment, chunked to bound peak memory.

    Returns ``(labels, distances)`` with squared L2 distances.
    """
    n = len(vectors)
    labels = np.empty(n, dtype=np.int64)
    dists = np.empty(n, dtype=np.float32)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = l2_squared_pairwise(vectors[start:stop], centroids)
        labels[start:stop] = block.argmin(axis=1)
        dists[start:stop] = block[np.arange(stop - start), labels[start:stop]]
    return labels, dists


class KMeans:
    """Lloyd's k-means with k-means++ init.

    Args:
        n_clusters: number of centroids (the paper uses K=16384 at
            billion scale; tests use much smaller K).
        max_iter: Lloyd iterations.
        tol: relative shift threshold for early stopping.
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 25,
        tol: float = 1e-4,
        seed: Optional[int] = 0,
    ):
        self.n_clusters = ensure_positive(n_clusters, "n_clusters")
        self.max_iter = ensure_positive(max_iter, "max_iter")
        self.tol = float(tol)
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    def fit(self, vectors: np.ndarray) -> "KMeans":
        """Cluster ``vectors``; stores ``self.centroids``."""
        vectors = ensure_matrix(vectors, "vectors")
        n = len(vectors)
        if n < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} vectors, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        centroids = _kmeans_pp_init(vectors, self.n_clusters, rng)

        for iteration in range(self.max_iter):
            labels, dists = assign_to_centroids(vectors, centroids)
            new_centroids = np.zeros_like(centroids)
            counts = np.bincount(labels, minlength=self.n_clusters)
            np.add.at(new_centroids, labels, vectors)
            nonempty = counts > 0
            new_centroids[nonempty] /= counts[nonempty, np.newaxis]
            self._repair_empty(new_centroids, counts, vectors, labels, dists, rng)

            shift = float(np.linalg.norm(new_centroids - centroids))
            scale = float(np.linalg.norm(centroids)) or 1.0
            centroids = new_centroids
            self.n_iter_ = iteration + 1
            if shift / scale < self.tol:
                break

        self.centroids = centroids
        _, final_dists = assign_to_centroids(vectors, centroids)
        self.inertia_ = float(final_dists.sum())
        return self

    def predict(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid label per vector."""
        if self.centroids is None:
            raise RuntimeError("KMeans is not fitted")
        vectors = ensure_matrix(vectors, "vectors")
        labels, __ = assign_to_centroids(vectors, self.centroids)
        return labels

    @staticmethod
    def _repair_empty(centroids, counts, vectors, labels, dists, rng) -> None:
        """Reseed empty clusters with the points farthest from their centroid."""
        empty = np.flatnonzero(counts == 0)
        if len(empty) == 0:
            return
        farthest = np.argsort(dists)[::-1]
        for slot, point_idx in zip(empty, farthest):
            centroids[slot] = vectors[point_idx]
