"""Vector index framework.

The paper (Sec. 2.2) supports quantization-based indexes (IVF_FLAT,
IVF_SQ8, IVF_PQ), graph-based indexes (HNSW, RNSG), and tree-based
indexes (Annoy), behind a small extensible interface so that new
indexes "only need to implement a few pre-defined interfaces".  That
interface is :class:`VectorIndex`; the registry maps index-type names
to constructors.
"""

from repro.index.base import VectorIndex, SearchResult, UnsupportedSearchParamError
from repro.index.kmeans import KMeans
from repro.index.flat import FlatIndex
from repro.index.ivf_flat import IVFFlatIndex
from repro.index.ivf_sq8 import IVFSQ8Index, ScalarQuantizer
from repro.index.ivf_pq import IVFOPQIndex, IVFPQIndex, ProductQuantizer
from repro.index.hnsw import HNSWIndex
from repro.index.nsg import NSGIndex
from repro.index.annoy import AnnoyIndex
from repro.index.binary_flat import BinaryFlatIndex
from repro.index.registry import (
    register_index,
    create_index,
    available_index_types,
)
from repro.index.io import index_to_bytes, index_from_bytes, SERIALIZABLE_TYPES

__all__ = [
    "VectorIndex",
    "SearchResult",
    "UnsupportedSearchParamError",
    "KMeans",
    "FlatIndex",
    "BinaryFlatIndex",
    "IVFFlatIndex",
    "IVFSQ8Index",
    "IVFPQIndex",
    "IVFOPQIndex",
    "ScalarQuantizer",
    "ProductQuantizer",
    "HNSWIndex",
    "NSGIndex",
    "AnnoyIndex",
    "register_index",
    "create_index",
    "available_index_types",
    "index_to_bytes",
    "index_from_bytes",
    "SERIALIZABLE_TYPES",
]
