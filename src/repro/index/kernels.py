"""Quantized-scan kernels: blocked fast-scan PQ, decode-free SQ8, OPQ.

The paper's Sec. 3.2 performance story is kernel-level: quantized
bucket scans dominate IVF query time, and the engine wins by making
them cache- and SIMD-friendly.  The Faiss library paper describes the
shapes this module reproduces in numpy:

* **Blocked flat-LUT PQ scanning** — the per-query ADC tables
  ``(m, ksub)`` are flattened to one row of ``m * ksub`` floats and
  bucket codes are offset *once* to flat indices
  (``code[:, sub] + sub * ksub``), so scoring a bucket is one fancy
  gather + sum per *block* of sub-quantizers instead of one python-level
  gather per sub-quantizer.  This is the numpy analogue of Faiss's
  register-resident "fast scan" tables: fewer, bigger gathers that stay
  in cache.  The block size trades gather-temp size against python
  overhead; ``benchmarks/bench_ablation_kernels.py`` sweeps it.

* **Per-query-batch table reuse** — :class:`PQScanContext` /
  :class:`SQ8ScanContext` are built once per search batch by
  ``IVFIndexBase._begin_scan`` and threaded through every bucket scan,
  so ADC tables (PQ) and affine query terms (SQ8) are never rebuilt
  per probed bucket (previously ``nprobe`` x redundant work).

* **Decode-free SQ8 scoring** — SQ8 decode is affine,
  ``v = a * c + b`` with ``a = vdiff / 255`` and ``b = vmin``, so every
  dense metric factors through the code matrix without materializing a
  float32 reconstruction:

  - ``q . v  = (q * a) . c + q . b``  (one GEMM against the cast codes)
  - ``|v|^2  = (a^2) . c^2 + 2 (a*b) . c + |b|^2``  (query-independent)
  - ``L2     = |q|^2 - 2 q.v + |v|^2``,  ``cosine = q.v / (|q| |v|)``

  The per-bucket terms (the float32 cast of the uint8 codes and the
  decoded squared norms) depend only on immutable bucket contents and
  are memoized in a :class:`CodeCache`, so repeated probes of one
  bucket cost exactly one GEMM.

* **OPQ** — :func:`train_opq_rotation` learns an orthogonal rotation
  ``R`` minimizing PQ reconstruction error by alternating codebook
  training with the orthogonal-Procrustes solve
  ``R = U V^T,  U S V^T = svd(X^T decode(encode(X R)))``.  Rotation
  preserves L2/IP/cosine, so rotated-space ADC scores are raw-space
  scores.  Training is seeded and deterministic.

Knobs: ``REPRO_KERNELS=0`` falls back to the naive per-query reference
paths (the equivalence baseline), ``REPRO_KERNEL_BLOCK`` overrides the
blocked-LUT block size (default :data:`DEFAULT_BLOCK`).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.metrics.dense import l2_from_expansion, unit_rows
from repro.obs import get_obs
from repro.obs.profile import profile_count
from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "DEFAULT_BLOCK",
    "kernels_enabled",
    "kernel_block_size",
    "flatten_tables",
    "adc_scan_blocked",
    "PQScanContext",
    "SQ8ScanContext",
    "CodeCache",
    "train_opq_rotation",
]

#: sub-quantizers scored per gather in the blocked LUT kernel.  Chosen
#: by the bench_ablation_kernels sweep: big enough to amortize python
#: dispatch, small enough that the (nq, n, block) gather temp stays
#: cache-resident for typical bucket sizes.
DEFAULT_BLOCK = 4

#: when neither the caller nor ``REPRO_KERNEL_BLOCK`` pins a block
#: size, scans whose full-width gather temp ``nq * n * m`` stays under
#: this many float32 elements (16 MiB) skip blocking entirely: one
#: gather + sum for all ``m`` sub-quantizers beats two python-level
#: dispatch rounds whenever the temp fits comfortably in cache.  The
#: bench_ablation_kernels sweep shows the crossover.
FUSED_GATHER_ELEMS = 1 << 22


def kernels_enabled() -> bool:
    """Batched/kernel scan paths on (default); ``REPRO_KERNELS=0`` selects
    the naive per-query reference paths for A/B comparison."""
    return os.environ.get("REPRO_KERNELS", "1") != "0"


def kernel_block_size() -> int:
    """Blocked-LUT block size (``REPRO_KERNEL_BLOCK`` overrides)."""
    raw = os.environ.get("REPRO_KERNEL_BLOCK", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_BLOCK


# -- blocked flat-LUT PQ scanning ------------------------------------------


def flatten_tables(tables: np.ndarray) -> np.ndarray:
    """ADC tables ``(nq, m, ksub)`` -> contiguous flat LUTs ``(nq, m*ksub)``."""
    nq, m, ksub = tables.shape
    return np.ascontiguousarray(tables.reshape(nq, m * ksub))


def flat_code_indices(codes: np.ndarray, ksub: int) -> np.ndarray:
    """Offset a bucket's ``(n, m)`` codes to flat LUT indices, once.

    Code ``c`` of sub-quantizer ``s`` indexes flat slot ``s * ksub + c``
    of every query's LUT row.  Query-independent, so cacheable per
    bucket.
    """
    __, m = codes.shape
    flat = codes.astype(np.int64)
    flat += np.arange(m, dtype=np.int64) * ksub
    return flat


def adc_scan_blocked(
    tables_flat: np.ndarray,
    codes: np.ndarray,
    ksub: int,
    block: Optional[int] = None,
    flat_codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Blocked fast-scan ADC: ``(nq, m*ksub)`` x ``(n, m)`` -> ``(nq, n)``.

    Codes are offset once to flat LUT indices (precomputed
    ``flat_codes`` skips that pass), then each block of sub-quantizers
    is scored with a single gather + sum.  When the block size is left
    unpinned and the full-width gather temp is small
    (:data:`FUSED_GATHER_ELEMS`), all ``m`` sub-quantizers are scored
    in one gather.  Equivalent to :meth:`ProductQuantizer.adc_scan` up
    to float summation order.
    """
    n, m = codes.shape
    nq = tables_flat.shape[0]
    if block is None:
        block = kernel_block_size()
        if (
            "REPRO_KERNEL_BLOCK" not in os.environ
            and nq * n * m <= FUSED_GATHER_ELEMS
        ):
            block = m
    if flat_codes is None:
        flat_codes = flat_code_indices(codes, ksub)
    if block >= m:
        return tables_flat[:, flat_codes].sum(axis=2, dtype=np.float32)
    out = np.zeros((nq, n), dtype=np.float32)
    for lo in range(0, m, block):
        gathered = tables_flat[:, flat_codes[:, lo : lo + block]]
        out += gathered.sum(axis=2, dtype=np.float32)
    return out


class PQScanContext:
    """Per-query-batch PQ scan state: flat ADC LUTs built exactly once.

    Built by ``IVFPQIndex._begin_scan`` and threaded through every
    bucket scan of the batch; ``qidx`` selects the LUT rows of the
    queries probing a particular bucket.
    """

    __slots__ = ("tables_flat", "ksub", "block")

    def __init__(self, tables_flat: np.ndarray, ksub: int, block: Optional[int] = None):
        self.tables_flat = tables_flat
        self.ksub = ksub
        # None defers to adc_scan_blocked's size-adaptive choice.
        self.block = block

    @classmethod
    def build(cls, pq, queries: np.ndarray, metric_name: str) -> "PQScanContext":
        tables = pq.build_tables(queries, metric_name)
        return cls(flatten_tables(tables), pq.ksub)

    def scan(
        self,
        codes: np.ndarray,
        qidx: Optional[np.ndarray] = None,
        cache: Optional["CodeCache"] = None,
        cache_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        flat = None
        if cache is not None and cache_key is not None:
            flat = cache.get(
                "pqflat", cache_key, lambda: flat_code_indices(codes, self.ksub)
            )
        tables = self.tables_flat if qidx is None else self.tables_flat[qidx]
        return adc_scan_blocked(tables, codes, self.ksub, self.block, flat_codes=flat)


# -- per-bucket kernel-term cache ------------------------------------------


class CodeCache:
    """Memoized per-bucket kernel terms over immutable bucket contents.

    Same contract and lock discipline as
    :class:`~repro.exec.normcache.NormCache` (strict-leaf lock, role
    ``"normcache"``; compute outside the lock, benign double-compute on
    concurrent miss) but generic in what it memoizes: the SQ8 scan
    caches the float32 cast of a bucket's uint8 codes and the decoded
    squared norms.  Owners call :meth:`invalidate` whenever bucket
    contents mutate (IVF ``_add``).
    """

    _GUARDED_BY = {"_entries": "_lock"}

    def __init__(self):
        self._lock = maybe_sanitize(threading.Lock(), "normcache")
        self._entries: Dict[Tuple[str, Hashable], np.ndarray] = {}

    def get(
        self, kind: str, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        full_key = (kind, key)
        with self._lock:
            value = self._entries.get(full_key)
        registry = get_obs().registry
        if value is not None:
            registry.counter("normcache_hits_total", kind=kind).inc()
            profile_count("normcache_hits")
            return value
        value = compute()
        with self._lock:
            self._entries[full_key] = value
        registry.counter("normcache_misses_total", kind=kind).inc()
        profile_count("normcache_misses")
        return value

    def invalidate(self) -> None:
        with self._lock:
            self._entries.clear()

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(v.nbytes for v in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- decode-free SQ8 scanning ----------------------------------------------


class SQ8ScanContext:
    """Per-query-batch affine terms for decode-free SQ8 scoring.

    With decode ``v = a * c + b`` (``a = vdiff/255``, ``b = vmin``) and
    code matrix ``C`` (uint8, cast to float32 once per bucket):

    * query-side, built once per batch: ``qa = q * a`` (``q`` unit-
      normalized first for cosine), ``qb = q . b``, ``|q|^2`` (L2);
    * bucket-side, cached per bucket: ``Cf = float32(C)`` and the
      decoded squared norms ``t_j = |a*C_j + b|^2`` computed by einsum
      without materializing the reconstruction.

    Every metric then reduces to one GEMM ``qa @ Cf.T`` plus rank-one
    corrections — no float32 decode of the bucket, ever.
    """

    __slots__ = ("metric_name", "qa", "qb", "q_sqnorms", "a", "a_sq", "ab2", "b_sq")

    def __init__(self, sq, queries: np.ndarray, metric_name: str):
        if metric_name not in ("l2", "ip", "cosine"):
            raise ValueError(f"SQ8 kernel does not support metric {metric_name!r}")
        self.metric_name = metric_name
        a = (sq.vdiff / 255.0).astype(np.float32)
        b = sq.vmin.astype(np.float32)
        self.a = a
        self.a_sq = a * a
        # Per-dimension the expansion a^2 c^2 + 2abc + b^2 = (ac + b)^2
        # cancels catastrophically in float32 when |ac + b| << |b|, so
        # the (cached, query-independent) norm terms run in float64.
        self.ab2 = (2.0 * a * b).astype(np.float64)
        self.b_sq = float(b.astype(np.float64) @ b.astype(np.float64))
        q = np.asarray(queries, dtype=np.float32)
        if metric_name == "cosine":
            q = unit_rows(q)
        self.qa = q * a[np.newaxis, :]
        self.qb = q @ b
        if metric_name == "l2":
            self.q_sqnorms = np.einsum("ij,ij->i", q, q)
        else:
            self.q_sqnorms = None

    # -- bucket-side terms -------------------------------------------------

    def cast_codes(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float32)

    def decoded_sqnorms(self, cf: np.ndarray) -> np.ndarray:
        """``|a * c + b|^2`` per row, straight from the cast codes.

        Accumulated in float64 (see ``__init__``) but stored float32:
        only the *accumulation* of the expansion cancels; the finished
        norm fits float32, and keeping it narrow keeps the per-scan
        broadcasting against the (nq, n) score matrix in float32.
        """
        t = (
            np.einsum("ij,ij,j->i", cf, cf, self.a_sq, dtype=np.float64)
            + cf @ self.ab2
            + self.b_sq
        )
        return t.astype(np.float32)

    # -- scoring -----------------------------------------------------------

    def scan(
        self,
        codes: np.ndarray,
        qidx: Optional[np.ndarray] = None,
        cache: Optional[CodeCache] = None,
        cache_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        """Score the batch rows ``qidx`` against one bucket's codes.

        ``cache``/``cache_key`` memoize the bucket-side terms for a
        full (compacted, unfiltered) bucket; filtered subsets are cast
        directly.
        """
        if cache is not None and cache_key is not None:
            cf = cache.get("sq8cast", cache_key, lambda: self.cast_codes(codes))
            if self.metric_name != "ip":
                t = cache.get(
                    "sq8sqnorm", cache_key, lambda: self.decoded_sqnorms(cf)
                )
            else:
                t = None
        else:
            cf = self.cast_codes(codes)
            t = self.decoded_sqnorms(cf) if self.metric_name != "ip" else None

        qa = self.qa if qidx is None else self.qa[qidx]
        qb = self.qb if qidx is None else self.qb[qidx]
        dots = qa @ cf.T + qb[:, np.newaxis]  # q . decode(c), decode-free
        if self.metric_name == "ip":
            return dots
        if self.metric_name == "l2":
            q_sq = self.q_sqnorms if qidx is None else self.q_sqnorms[qidx]
            return l2_from_expansion(q_sq[:, np.newaxis], dots, t[np.newaxis, :])
        # cosine: queries are unit rows already; normalize the data side
        # by the decoded norms, zero rows scoring 0 (never NaN).
        vnorm = np.sqrt(t)[np.newaxis, :]
        return np.divide(
            dots, vnorm, out=np.zeros(dots.shape, dtype=np.float32),
            where=vnorm > 0,
        )


# -- OPQ: optimized product quantization rotation --------------------------


def random_rotation(dim: int, seed: Optional[int]) -> np.ndarray:
    """Seeded Haar-ish orthogonal matrix (QR of a gaussian)."""
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.normal(size=(dim, dim)))
    # Fix signs so the factorization (and thus training) is unique.
    q *= np.sign(np.diag(r))[np.newaxis, :]
    return q.astype(np.float32)


def train_opq_rotation(
    vectors: np.ndarray,
    pq_factory: Callable[[], "object"],
    opq_iters: int = 8,
    inner_kmeans_iters: int = 4,
    seed: Optional[int] = 0,
):
    """Alternating OPQ optimization (Ge et al., CVPR 2013, non-parametric).

    Repeats: train PQ codebooks on the rotated data (few k-means
    iterations — they only steer the rotation), reconstruct, and solve
    the orthogonal Procrustes problem
    ``min_R ||X R - decode(encode(X R))||_F`` via one SVD.  Returns
    ``(rotation, pq)`` where ``pq`` is fully trained (default k-means
    budget) on the final rotated data.  Deterministic for a fixed seed:
    the initial rotation is a seeded QR and every inner k-means is
    seeded by the factory.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    rotation = random_rotation(vectors.shape[1], seed)
    for __ in range(max(0, int(opq_iters))):
        rotated = vectors @ rotation
        pq = pq_factory()
        pq.train(rotated, max_iter=inner_kmeans_iters)
        reconstructed = pq.decode(pq.encode(rotated))
        # Procrustes: R = U V^T for U S V^T = svd(X^T X_hat).
        u, __s, vt = np.linalg.svd(
            vectors.T.astype(np.float64) @ reconstructed.astype(np.float64)
        )
        rotation = (u @ vt).astype(np.float32)
    pq = pq_factory()
    pq.train(vectors @ rotation)
    return rotation, pq
