"""IVF_SQ8: scalar quantization to one byte per dimension.

Paper Sec. 3.1: "IVF_SQ8 uses a compressed representation ... adopting
a one-dimensional quantizer (called 'scalar quantizer') to compress a
4-byte float value to a 1-byte integer", taking 1/4 the space of
IVF_FLAT while losing only ~1% recall (footnote 6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.index.ivf_common import IVFIndexBase
from repro.obs.profile import profile_count
from repro.utils import ensure_matrix


class ScalarQuantizer:
    """Per-dimension uniform quantizer float32 -> uint8.

    Trained bounds are per dimension; values outside the trained range
    are clipped (the standard SQ8 behaviour).
    """

    def __init__(self):
        self.vmin: Optional[np.ndarray] = None
        self.vdiff: Optional[np.ndarray] = None

    @property
    def is_trained(self) -> bool:
        return self.vmin is not None

    def train(self, vectors: np.ndarray) -> "ScalarQuantizer":
        vectors = ensure_matrix(vectors, "vectors")
        self.vmin = vectors.min(axis=0)
        vmax = vectors.max(axis=0)
        diff = vmax - self.vmin
        # Constant dimensions quantize to code 0 and decode exactly.
        diff[diff == 0] = 1.0
        self.vdiff = diff
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError("ScalarQuantizer is not trained")
        vectors = ensure_matrix(vectors, "vectors")
        scaled = (vectors - self.vmin) / self.vdiff * 255.0
        return np.clip(np.rint(scaled), 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError("ScalarQuantizer is not trained")
        codes = np.asarray(codes, dtype=np.float32)
        if codes.ndim == 1:
            codes = codes[np.newaxis, :]
        return codes / 255.0 * self.vdiff + self.vmin

    def max_abs_error(self) -> np.ndarray:
        """Per-dimension worst-case reconstruction error (half a step)."""
        return self.vdiff / 255.0 / 2.0


class IVFSQ8Index(IVFIndexBase):
    """IVF with SQ8-compressed residents: 4x smaller, ~same recall."""

    index_type = "IVF_SQ8"

    def __init__(self, dim, metric="l2", nlist=128, kmeans_iters=20, seed=0):
        super().__init__(dim, metric, nlist=nlist, kmeans_iters=kmeans_iters, seed=seed)
        self.sq = ScalarQuantizer()

    def _train_fine(self, vectors: np.ndarray) -> None:
        self.sq.train(vectors)

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return self.sq.encode(vectors)

    def _scan_list(
        self, queries: np.ndarray, codes: np.ndarray, list_no: int
    ) -> np.ndarray:
        profile_count("distance_evals", len(queries) * len(codes))
        return self.metric.pairwise(queries, self.sq.decode(codes))
