"""IVF_SQ8: scalar quantization to one byte per dimension.

Paper Sec. 3.1: "IVF_SQ8 uses a compressed representation ... adopting
a one-dimensional quantizer (called 'scalar quantizer') to compress a
4-byte float value to a 1-byte integer", taking 1/4 the space of
IVF_FLAT while losing only ~1% recall (footnote 6).

On the kernel path scoring is *decode-free*: decode is affine
(``v = c * vdiff / 255 + vmin``), so per-query affine correction terms
(built once per batch in :class:`~repro.index.kernels.SQ8ScanContext`)
reduce L2/IP/cosine to one GEMM against the uint8 code matrix cast
once per bucket — no materialized float32 reconstruction.  The cast
and the decoded squared norms are memoized per bucket
(:class:`~repro.index.kernels.CodeCache`), invalidated on append.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.index import kernels
from repro.index.ivf_common import IVFIndexBase
from repro.obs.profile import profile_count
from repro.utils import ensure_matrix


class ScalarQuantizer:
    """Per-dimension uniform quantizer float32 -> uint8.

    Trained bounds are per dimension; values outside the trained range
    are clipped (the standard SQ8 behaviour).
    """

    def __init__(self):
        self.vmin: Optional[np.ndarray] = None
        self.vdiff: Optional[np.ndarray] = None

    @property
    def is_trained(self) -> bool:
        return self.vmin is not None

    def train(self, vectors: np.ndarray) -> "ScalarQuantizer":
        vectors = ensure_matrix(vectors, "vectors")
        self.vmin = vectors.min(axis=0)
        vmax = vectors.max(axis=0)
        diff = vmax - self.vmin
        # Constant dimensions quantize to code 0 and decode exactly.
        diff[diff == 0] = 1.0
        self.vdiff = diff
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError("ScalarQuantizer is not trained")
        vectors = ensure_matrix(vectors, "vectors")
        scaled = (vectors - self.vmin) / self.vdiff * 255.0
        return np.clip(np.rint(scaled), 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float vectors; output rank mirrors input rank."""
        if not self.is_trained:
            raise RuntimeError("ScalarQuantizer is not trained")
        codes = np.asarray(codes, dtype=np.float32)
        single = codes.ndim == 1
        if single:
            codes = codes[np.newaxis, :]
        out = codes / 255.0 * self.vdiff + self.vmin
        return out[0] if single else out

    def max_abs_error(self) -> np.ndarray:
        """Per-dimension worst-case reconstruction error (half a step)."""
        return self.vdiff / 255.0 / 2.0


class IVFSQ8Index(IVFIndexBase):
    """IVF with SQ8-compressed residents: 4x smaller, ~same recall."""

    index_type = "IVF_SQ8"

    def __init__(self, dim, metric="l2", nlist=128, kmeans_iters=20, seed=0):
        super().__init__(dim, metric, nlist=nlist, kmeans_iters=kmeans_iters, seed=seed)
        self.sq = ScalarQuantizer()
        #: per-bucket float32 cast + decoded-norm cache for the
        #: decode-free kernel; appends mutate buckets, so ``_add``
        #: invalidates wholesale (same rule as IVF_FLAT's NormCache).
        self.kernel_cache = kernels.CodeCache()

    def _train_fine(self, vectors: np.ndarray) -> None:
        self.sq.train(vectors)

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        super()._add(vectors, ids)
        self.kernel_cache.invalidate()

    def _warm_list(self, list_no: int, codes: np.ndarray) -> None:
        if self.metric.name not in ("l2", "ip", "cosine"):
            return
        # Empty-query context: only the query-independent bucket terms
        # (float32 cast, decoded norms) are computed here.
        ctx = kernels.SQ8ScanContext(
            self.sq, np.empty((0, self.dim), dtype=np.float32), self.metric.name
        )
        cf = self.kernel_cache.get(
            "sq8cast", list_no, lambda: ctx.cast_codes(codes)
        )
        if self.metric.name != "ip":
            self.kernel_cache.get(
                "sq8sqnorm", list_no, lambda: ctx.decoded_sqnorms(cf)
            )

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return self.sq.encode(vectors)

    def _begin_scan(self, queries: np.ndarray):
        if self.metric.name not in ("l2", "ip", "cosine"):
            return None
        return kernels.SQ8ScanContext(self.sq, queries, self.metric.name)

    def _scan_list(
        self,
        queries: np.ndarray,
        codes: np.ndarray,
        list_no: int,
        ctx=None,
        qidx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        profile_count("distance_evals", len(queries) * len(codes))
        # Code bytes gathered: each probing query walks the bucket's
        # (n, dim) uint8 block once.
        profile_count("bytes_read", len(queries) * codes.nbytes)
        if ctx is not None:
            if self.lists.is_compacted_block(list_no, codes):
                return ctx.scan(
                    codes, qidx, cache=self.kernel_cache, cache_key=list_no
                )
            return ctx.scan(codes, qidx)
        return self.metric.pairwise(queries, self.sq.decode(codes))

    def row_code_bytes(self) -> int:
        return self.dim

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.kernel_cache.memory_bytes()
