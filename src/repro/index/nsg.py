"""NSG (Navigating Spreading-out Graph), the paper's "RNSG" (Fu et al.).

Construction: build an exact kNN graph (chunked brute force — our
datasets are laptop-scale), then apply the MRNG edge-selection rule
from the NSG paper to sparsify, rooted at the dataset medoid, and
finally patch connectivity with a spanning pass so greedy search from
the medoid can reach every node.  Search is best-first beam search
with pool size ``search_l``.

Unlike HNSW, NSG is built once over a static segment — matching how
Milvus builds indexes only for sealed segments (Sec. 2.3).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.metrics.base import MetricKind
from repro.obs.profile import current_node
from repro.utils import ensure_positive, sorted_membership

_KNN_CHUNK = 2048


class NSGIndex(VectorIndex):
    """Navigating Spreading-out Graph index (build-once, search-many).

    Args:
        knn: size of the base kNN graph used for candidate generation.
        out_degree: maximum out-degree after MRNG pruning.
        search_l: default search pool width.
    """

    index_type = "NSG"
    requires_training = False
    SEARCH_PARAMS = frozenset({"search_l", "row_filter"})

    def __init__(
        self,
        dim: int,
        metric="l2",
        knn: int = 32,
        out_degree: int = 24,
        search_l: int = 64,
        seed: Optional[int] = 0,
    ):
        super().__init__(dim, metric)
        if self.metric.kind is not MetricKind.DENSE:
            raise ValueError("NSG supports dense metrics only")
        self.knn = ensure_positive(knn, "knn")
        self.out_degree = ensure_positive(out_degree, "out_degree")
        self.search_l = ensure_positive(search_l, "search_l")
        self.seed = seed
        self._vectors: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._graph: List[np.ndarray] = []
        self._medoid: int = -1
        self._built = False

    # -- ingest -------------------------------------------------------------

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        if self._vectors is None:
            self._vectors = vectors.copy()
            self._ids = ids.copy()
        else:
            self._vectors = np.concatenate([self._vectors, vectors])
            self._ids = np.concatenate([self._ids, ids])
        self._built = False

    def build(self) -> None:
        """Construct the graph; called lazily on first search."""
        n = self.ntotal
        if n == 0:
            return
        data = self._vectors
        self._medoid = self._find_medoid(data)
        knn_graph = self._build_knn_graph(data, min(self.knn, n - 1)) if n > 1 else [
            np.empty(0, dtype=np.int64)
        ]
        # NSG candidate generation: for every node, search the kNN graph
        # from the medoid toward that node and pool the *visited* nodes
        # with its kNN list.  The visited nodes contribute the long
        # cross-region edges that make the pruned graph navigable.
        self._graph = knn_graph
        pruned: List[np.ndarray] = []
        for i in range(n):
            visited = self._visited_along_search(data[i], pool=self.knn)
            candidates = np.unique(np.concatenate([knn_graph[i], visited]))
            candidates = candidates[candidates != i]
            pruned.append(self._mrng_prune(i, candidates, data))
        self._graph = pruned
        self._add_reverse_edges(data)
        self._ensure_reachable(data)
        self._built = True

    def _visited_along_search(self, target: np.ndarray, pool: int) -> np.ndarray:
        """Nodes visited while beam-searching the current graph for ``target``."""
        entry = self._medoid
        d0 = float(self._dist(target, np.array([entry]))[0])
        visited = {entry}
        candidates = [(d0, entry)]
        results = [(-d0, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= pool and dist > -results[0][0]:
                break
            unvisited = [int(x) for x in self._graph[node] if int(x) not in visited]
            if not unvisited:
                continue
            visited.update(unvisited)
            dists = self._dist(target, np.array(unvisited))
            for nd, nn in zip(dists, unvisited):
                nd = float(nd)
                if len(results) < pool or nd < -results[0][0]:
                    heapq.heappush(candidates, (nd, nn))
                    heapq.heappush(results, (-nd, nn))
                    if len(results) > pool:
                        heapq.heappop(results)
        return np.fromiter(visited, dtype=np.int64)

    def _add_reverse_edges(self, data: np.ndarray) -> None:
        """Insert reverse edges (NSG construction detail) for navigability.

        A directed edge u->v also proposes v->u; the target re-prunes
        with the MRNG rule when its out-degree overflows.
        """
        proposals: List[List[int]] = [[] for __ in range(len(self._graph))]
        for u, neighbors in enumerate(self._graph):
            for v in neighbors:
                proposals[int(v)].append(u)
        for v, extra in enumerate(proposals):
            if not extra:
                continue
            merged = np.unique(
                np.concatenate([self._graph[v], np.array(extra, dtype=np.int64)])
            )
            merged = merged[merged != v]
            if len(merged) > self.out_degree:
                self._graph[v] = self._mrng_prune(v, merged, data)
            else:
                self._graph[v] = merged

    def _find_medoid(self, data: np.ndarray) -> int:
        center = data.mean(axis=0, keepdims=True)
        dists = self.metric.pairwise(center, data)[0]
        order = self.metric.sort_order(dists)
        return int(order[0])

    def _build_knn_graph(self, data: np.ndarray, k: int) -> List[np.ndarray]:
        n = len(data)
        graph: List[np.ndarray] = []
        for start in range(0, n, _KNN_CHUNK):
            stop = min(start + _KNN_CHUNK, n)
            scores = self.metric.pairwise(data[start:stop], data)
            keyed = -scores if self.metric.higher_is_better else scores
            # Exclude self by inflating own entry.
            rows = np.arange(start, stop)
            keyed[np.arange(stop - start), rows] = np.inf
            part = np.argpartition(keyed, k - 1, axis=1)[:, :k]
            row_scores = np.take_along_axis(keyed, part, axis=1)
            order = np.argsort(row_scores, axis=1, kind="stable")
            neighbors = np.take_along_axis(part, order, axis=1)
            graph.extend(neighbors[i].astype(np.int64) for i in range(stop - start))
        return graph

    def _mrng_prune(
        self, node: int, candidates: np.ndarray, data: np.ndarray
    ) -> np.ndarray:
        """MRNG rule: keep candidate c unless a kept neighbor is closer to c."""
        if len(candidates) == 0:
            return candidates
        cand_scores = self.metric.pairwise(data[node : node + 1], data[candidates])[0]
        order = self.metric.sort_order(cand_scores)
        selected: List[int] = []
        for idx in order:
            cand = int(candidates[idx])
            if len(selected) >= self.out_degree:
                break
            cand_dist = cand_scores[idx]
            dominated = False
            if selected:
                between = self.metric.pairwise(
                    data[cand : cand + 1], data[np.array(selected)]
                )[0]
                if self.metric.higher_is_better:
                    dominated = bool((between > cand_dist).any())
                else:
                    dominated = bool((between < cand_dist).any())
            if not dominated:
                selected.append(cand)
        return np.array(selected, dtype=np.int64)

    def _ensure_reachable(self, data: np.ndarray) -> None:
        """DFS from medoid; attach any unreachable node to its nearest reached node."""
        n = len(data)
        reached = np.zeros(n, dtype=bool)
        stack = [self._medoid]
        reached[self._medoid] = True
        while stack:
            node = stack.pop()
            for nb in self._graph[node]:
                if not reached[nb]:
                    reached[nb] = True
                    stack.append(int(nb))
        missing = np.flatnonzero(~reached)
        if len(missing) == 0:
            return
        reached_nodes = np.flatnonzero(reached)
        for node in missing:
            scores = self.metric.pairwise(
                data[node : node + 1], data[reached_nodes]
            )[0]
            order = self.metric.sort_order(scores)
            anchor = int(reached_nodes[order[0]])
            self._graph[anchor] = np.append(self._graph[anchor], node)
            reached[node] = True
            reached_nodes = np.append(reached_nodes, node)

    # -- query -------------------------------------------------------------------

    def _dist(self, query: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        node = current_node()
        if node is not None:
            node.count("distance_evals", len(nodes))
        scores = self.metric.pairwise(query[np.newaxis, :], self._vectors[nodes])[0]
        return -scores if self.metric.higher_is_better else scores

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        search_l: Optional[int] = None,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        if params:
            raise TypeError(f"unknown search params: {sorted(params)}")
        if not self._built:
            self.build()
        pool = max(search_l or self.search_l, k)
        result = SearchResult.empty(len(queries), k, self.metric)
        if self.ntotal == 0:
            return result
        allowed = None
        if row_filter is not None:
            allowed = sorted_membership(
                self._ids.astype(np.int64),
                np.asarray(row_filter, dtype=np.int64),
            )
            if not allowed.any():
                return result
        for qi, vec in enumerate(queries):
            found = self._beam_search(vec, pool, allowed=allowed)[:k]
            for j, (dist, node) in enumerate(found):
                result.ids[qi, j] = self._ids[node]
                result.scores[qi, j] = -dist if self.metric.higher_is_better else dist
        return result

    def _beam_search(
        self, vec: np.ndarray, pool: int, allowed: Optional[np.ndarray] = None
    ) -> List[Tuple[float, int]]:
        """Best-first beam from the medoid.

        As in :meth:`HNSWIndex._search_layer`, an ``allowed`` mask turns
        this into in-traversal filtering: disallowed nodes are expanded
        for navigation but never admitted into the result pool.
        """
        entry = self._medoid
        start = np.array([entry])
        d0 = float(self._dist(vec, start)[0])
        visited = {entry}
        candidates = [(d0, entry)]
        results = [(-d0, entry)] if allowed is None or allowed[entry] else []
        pushes = 0
        filtered = 0
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= pool and dist > -results[0][0]:
                break
            unvisited = [int(n) for n in self._graph[node] if int(n) not in visited]
            if not unvisited:
                continue
            visited.update(unvisited)
            dists = self._dist(vec, np.array(unvisited))
            for nd, nn in zip(dists, unvisited):
                nd = float(nd)
                if len(results) < pool or nd < -results[0][0]:
                    heapq.heappush(candidates, (nd, nn))
                    if allowed is None or allowed[nn]:
                        heapq.heappush(results, (-nd, nn))
                        pushes += 1
                        if len(results) > pool:
                            heapq.heappop(results)
                    else:
                        filtered += 1
        pnode = current_node()
        if pnode is not None:
            pnode.count("heap_pushes", pushes)
            pnode.count("rows_scanned", len(visited))
            if filtered:
                pnode.count("candidates_pruned", filtered)
        return sorted((-d, n) for d, n in results)

    # -- introspection ----------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    def memory_bytes(self) -> int:
        total = 0
        if self._vectors is not None:
            total += self._vectors.nbytes + self._ids.nbytes
        total += sum(g.nbytes for g in self._graph)
        return total
