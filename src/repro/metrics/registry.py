"""Metric registry: name -> Metric instance.

Mirrors the extensibility story of the index framework (Sec. 2.2): new
metrics plug in through :func:`register_metric` without touching query
processing code.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.metrics.base import Metric
from repro.metrics.binary import HammingMetric, JaccardMetric, TanimotoMetric
from repro.metrics.dense import CosineMetric, EuclideanMetric, InnerProductMetric

_REGISTRY: Dict[str, Metric] = {}

_ALIASES = {
    "euclidean": "l2",
    "l2_squared": "l2",
    "inner_product": "ip",
    "dot": "ip",
    "cos": "cosine",
}


def register_metric(metric: Metric, overwrite: bool = False) -> None:
    """Add ``metric`` to the registry under ``metric.name``."""
    if not metric.name:
        raise ValueError("metric must define a non-empty name")
    if metric.name in _REGISTRY and not overwrite:
        raise ValueError(f"metric {metric.name!r} already registered")
    _REGISTRY[metric.name] = metric


def get_metric(metric: Union[str, Metric]) -> Metric:
    """Resolve a metric by name (or pass a Metric instance through)."""
    if isinstance(metric, Metric):
        return metric
    key = _ALIASES.get(metric.lower(), metric.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> List[str]:
    """Names of every registered metric."""
    return sorted(_REGISTRY)


for _metric in (
    EuclideanMetric(),
    InnerProductMetric(),
    CosineMetric(),
    HammingMetric(),
    JaccardMetric(),
    TanimotoMetric(),
):
    register_metric(_metric)
