"""Similarity metrics for vector search.

The paper (Sec. 2.1) lists the similarity functions Milvus offers:
Euclidean distance, inner product, cosine similarity, Hamming distance,
and Jaccard distance; Tanimoto distance is used by the chemical
structure analysis application (Sec. 6.2).

Every metric is exposed as a :class:`Metric` object with a vectorized
``pairwise`` kernel and a ``higher_is_better`` flag so that query
processing code never special-cases metric direction.
"""

from repro.metrics.base import Metric, MetricKind
from repro.metrics.dense import (
    EuclideanMetric,
    InnerProductMetric,
    CosineMetric,
    l2_squared_pairwise,
    inner_product_pairwise,
    cosine_pairwise,
)
from repro.metrics.binary import (
    HammingMetric,
    JaccardMetric,
    TanimotoMetric,
    pack_bits,
    unpack_bits,
    hamming_pairwise,
    jaccard_pairwise,
    tanimoto_pairwise,
)
from repro.metrics.registry import get_metric, register_metric, available_metrics

__all__ = [
    "Metric",
    "MetricKind",
    "EuclideanMetric",
    "InnerProductMetric",
    "CosineMetric",
    "HammingMetric",
    "JaccardMetric",
    "TanimotoMetric",
    "l2_squared_pairwise",
    "inner_product_pairwise",
    "cosine_pairwise",
    "hamming_pairwise",
    "jaccard_pairwise",
    "tanimoto_pairwise",
    "pack_bits",
    "unpack_bits",
    "get_metric",
    "register_metric",
    "available_metrics",
]
