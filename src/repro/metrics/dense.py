"""Dense float-vector metrics: Euclidean (L2), inner product, cosine.

All kernels operate on float32/float64 arrays of shape ``(m, d)`` vs
``(n, d)`` and return ``(m, n)`` score matrices.  The L2 kernel uses the
classic expansion ``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` so the heavy
lifting is a single GEMM, mirroring how Faiss/Milvus lower distance
computation onto BLAS.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric, MetricKind


def _as_2d_float(arr: np.ndarray) -> np.ndarray:
    out = np.asarray(arr, dtype=np.float32)
    if out.ndim == 1:
        out = out[np.newaxis, :]
    if out.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got shape {out.shape}")
    return out


def l2_squared_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every query and data row."""
    queries = _as_2d_float(queries)
    data = _as_2d_float(data)
    q_norms = np.einsum("ij,ij->i", queries, queries)[:, np.newaxis]
    x_norms = np.einsum("ij,ij->i", data, data)[np.newaxis, :]
    dots = queries @ data.T
    dists = q_norms + x_norms - 2.0 * dots
    # Rounding in the expansion can produce tiny negatives.
    np.maximum(dists, 0.0, out=dists)
    return dists


def inner_product_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Inner products between every query and data row."""
    return _as_2d_float(queries) @ _as_2d_float(data).T


def cosine_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Cosine similarities between every query and data row.

    Zero vectors score 0 against everything rather than NaN so that the
    metric stays total.
    """
    queries = _as_2d_float(queries)
    data = _as_2d_float(data)
    q_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    x_norms = np.linalg.norm(data, axis=1, keepdims=True)
    q_unit = np.divide(queries, q_norms, out=np.zeros_like(queries), where=q_norms > 0)
    x_unit = np.divide(data, x_norms, out=np.zeros_like(data), where=x_norms > 0)
    return q_unit @ x_unit.T


class EuclideanMetric(Metric):
    """Squared L2 distance (monotone in true L2; lower is better)."""

    name = "l2"
    higher_is_better = False
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return l2_squared_pairwise(queries, data)


class InnerProductMetric(Metric):
    """Inner product similarity (higher is better)."""

    name = "ip"
    higher_is_better = True
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return inner_product_pairwise(queries, data)


class CosineMetric(Metric):
    """Cosine similarity (higher is better)."""

    name = "cosine"
    higher_is_better = True
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return cosine_pairwise(queries, data)
