"""Dense float-vector metrics: Euclidean (L2), inner product, cosine.

All kernels operate on float32/float64 arrays of shape ``(m, d)`` vs
``(n, d)`` and return ``(m, n)`` score matrices.  The L2 kernel uses the
classic expansion ``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` so the heavy
lifting is a single GEMM, mirroring how Faiss/Milvus lower distance
computation onto BLAS.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric, MetricKind


def _as_2d_float(arr: np.ndarray) -> np.ndarray:
    out = np.asarray(arr, dtype=np.float32)
    if out.ndim == 1:
        out = out[np.newaxis, :]
    if out.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got shape {out.shape}")
    return out


def squared_norms(rows: np.ndarray) -> np.ndarray:
    """Per-row ``|x|^2``, the data-side term of the L2 expansion.

    Row-wise, so slicing the result by a row mask equals computing it
    on the sliced rows — the property the per-segment norm cache relies
    on when a filter selects a subset of a segment.
    """
    rows = _as_2d_float(rows)
    return np.einsum("ij,ij->i", rows, rows)


def unit_rows(rows: np.ndarray) -> np.ndarray:
    """Rows normalized to unit L2 norm; zero rows stay zero (not NaN)."""
    rows = _as_2d_float(rows)
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    return np.divide(rows, norms, out=np.zeros_like(rows), where=norms > 0)


def l2_from_expansion(
    q_sq_norms: np.ndarray, dots: np.ndarray, x_sq_norms: np.ndarray
) -> np.ndarray:
    """Assemble ``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` from its parts.

    Single home for the expansion's clamping semantics (rounding can
    produce tiny negatives), shared by the dense L2 kernel and the
    decode-free SQ8 kernel — which computes ``q.x`` and ``|x|^2``
    straight from uint8 codes (:mod:`repro.index.kernels`) but must
    clamp identically to the reference path.  Inputs must already be
    broadcastable to the output shape.
    """
    dists = q_sq_norms + x_sq_norms - 2.0 * dots
    np.maximum(dists, 0.0, out=dists)
    return dists


def l2_squared_pairwise(
    queries: np.ndarray,
    data: np.ndarray,
    data_sq_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances between every query and data row.

    ``data_sq_norms`` optionally supplies precomputed
    :func:`squared_norms` of ``data`` (e.g. from a segment's kernel
    cache), skipping the data-side einsum.
    """
    queries = _as_2d_float(queries)
    data = _as_2d_float(data)
    q_norms = np.einsum("ij,ij->i", queries, queries)[:, np.newaxis]
    if data_sq_norms is None:
        x_norms = np.einsum("ij,ij->i", data, data)[np.newaxis, :]
    else:
        x_norms = np.asarray(data_sq_norms)[np.newaxis, :]
    dots = queries @ data.T
    return l2_from_expansion(q_norms, dots, x_norms)


def inner_product_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Inner products between every query and data row."""
    return _as_2d_float(queries) @ _as_2d_float(data).T


def cosine_pairwise(
    queries: np.ndarray,
    data: np.ndarray,
    data_unit: np.ndarray | None = None,
) -> np.ndarray:
    """Cosine similarities between every query and data row.

    Zero vectors score 0 against everything rather than NaN so that the
    metric stays total.  ``data_unit`` optionally supplies precomputed
    :func:`unit_rows` of ``data``.
    """
    q_unit = unit_rows(queries)
    x_unit = unit_rows(data) if data_unit is None else _as_2d_float(data_unit)
    return q_unit @ x_unit.T


class EuclideanMetric(Metric):
    """Squared L2 distance (monotone in true L2; lower is better)."""

    name = "l2"
    higher_is_better = False
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return l2_squared_pairwise(queries, data)


class InnerProductMetric(Metric):
    """Inner product similarity (higher is better)."""

    name = "ip"
    higher_is_better = True
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return inner_product_pairwise(queries, data)


class CosineMetric(Metric):
    """Cosine similarity (higher is better)."""

    name = "cosine"
    higher_is_better = True
    kind = MetricKind.DENSE

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return cosine_pairwise(queries, data)
