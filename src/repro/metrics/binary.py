"""Binary-vector metrics: Hamming, Jaccard, and Tanimoto.

Binary vectors are stored bit-packed as ``uint8`` arrays (8 dimensions
per byte), matching how Milvus/Faiss store binary fingerprints.  A
precomputed popcount table makes the kernels fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric, MetricKind

_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array of shape ``(n, d)`` into ``(n, ceil(d/8))`` uint8 codes."""
    bits = np.asarray(bits)
    if bits.ndim == 1:
        bits = bits[np.newaxis, :]
    return np.packbits(bits.astype(np.uint8), axis=1)


def unpack_bits(codes: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncating padding bits to ``dim``."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim == 1:
        codes = codes[np.newaxis, :]
    return np.unpackbits(codes, axis=1)[:, :dim]


def _as_codes(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.uint8)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    return arr


def _popcount(arr: np.ndarray) -> np.ndarray:
    return _POPCOUNT[arr].astype(np.int64)


def hamming_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Hamming distances between packed binary codes."""
    queries = _as_codes(queries)
    data = _as_codes(data)
    # XOR each query byte against each data byte, popcount, sum over bytes.
    xored = queries[:, np.newaxis, :] ^ data[np.newaxis, :, :]
    return _popcount(xored).sum(axis=2).astype(np.float64)


def _intersection_union(queries: np.ndarray, data: np.ndarray):
    queries = _as_codes(queries)
    data = _as_codes(data)
    anded = queries[:, np.newaxis, :] & data[np.newaxis, :, :]
    ored = queries[:, np.newaxis, :] | data[np.newaxis, :, :]
    inter = _popcount(anded).sum(axis=2).astype(np.float64)
    union = _popcount(ored).sum(axis=2).astype(np.float64)
    return inter, union


def jaccard_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Jaccard distances ``1 - |A∩B| / |A∪B|`` (empty/empty distance is 0)."""
    inter, union = _intersection_union(queries, data)
    sim = np.divide(inter, union, out=np.ones_like(inter), where=union > 0)
    return 1.0 - sim


def tanimoto_pairwise(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Tanimoto distances over binary fingerprints.

    For binary data the Tanimoto coefficient coincides with the Jaccard
    similarity; the distance form here is ``-log2(similarity)`` as used
    in cheminformatics, with empty/empty pairs scoring distance 0 and
    disjoint pairs scoring ``inf``.
    """
    inter, union = _intersection_union(queries, data)
    sim = np.divide(inter, union, out=np.ones_like(inter), where=union > 0)
    with np.errstate(divide="ignore"):
        # Fill with -inf so the final negation maps disjoint pairs
        # (similarity 0) to distance +inf, the worst possible.
        logs = np.log2(sim, out=np.full_like(sim, -np.inf), where=sim > 0)
    return -logs


class HammingMetric(Metric):
    """Hamming distance over bit-packed codes (lower is better)."""

    name = "hamming"
    higher_is_better = False
    kind = MetricKind.BINARY

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return hamming_pairwise(queries, data)


class JaccardMetric(Metric):
    """Jaccard distance over bit-packed codes (lower is better)."""

    name = "jaccard"
    higher_is_better = False
    kind = MetricKind.BINARY

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return jaccard_pairwise(queries, data)


class TanimotoMetric(Metric):
    """Tanimoto distance over bit-packed codes (lower is better)."""

    name = "tanimoto"
    higher_is_better = False
    kind = MetricKind.BINARY

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return tanimoto_pairwise(queries, data)
