"""Metric abstraction shared by every index and query path."""

from __future__ import annotations

import abc
import enum

import numpy as np


class MetricKind(enum.Enum):
    """Broad family of a metric, used by indexes to validate support."""

    DENSE = "dense"
    BINARY = "binary"


class Metric(abc.ABC):
    """A similarity or distance function over batches of vectors.

    Subclasses implement :meth:`pairwise` as a fully vectorized kernel.
    Query processing code orders candidates with ``higher_is_better``;
    it must never assume a particular direction.
    """

    #: canonical registry name, e.g. ``"l2"``.
    name: str = ""
    #: True when a larger pairwise value means a closer match.
    higher_is_better: bool = False
    kind: MetricKind = MetricKind.DENSE

    @abc.abstractmethod
    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Return an ``(m, n)`` matrix of scores for ``m`` queries and ``n`` rows."""

    def single(self, query: np.ndarray, vector: np.ndarray) -> float:
        """Score one query against one vector."""
        query = np.atleast_2d(query)
        vector = np.atleast_2d(vector)
        return float(self.pairwise(query, vector)[0, 0])

    def worst_value(self) -> float:
        """The sentinel score that loses against any real score."""
        return -np.inf if self.higher_is_better else np.inf

    def is_better(self, a: float, b: float) -> bool:
        """True when score ``a`` beats score ``b``."""
        return a > b if self.higher_is_better else a < b

    def sort_order(self, scores: np.ndarray) -> np.ndarray:
        """Indices that sort ``scores`` from best to worst."""
        order = np.argsort(scores, kind="stable")
        if self.higher_is_better:
            order = order[::-1]
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
