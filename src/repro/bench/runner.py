"""Measurement primitives shared by every table/figure benchmark."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.datasets import recall_at_k


def measure_throughput(
    search_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
    repeats: int = 1,
) -> float:
    """Queries per second of ``search_fn`` over the batch.

    The paper measures throughput "by issuing 10,000 random queries";
    we pass the whole batch to the engine (engines that cannot batch
    pay their per-query costs internally, as they would in production).
    """
    best = np.inf
    for __ in range(max(1, repeats)):
        started = time.perf_counter()
        search_fn(queries)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return len(queries) / best if best > 0 else float("inf")


@dataclass
class CurvePoint:
    """One point of a recall-throughput curve."""

    param: Dict[str, object]
    recall: float
    throughput: float


def recall_throughput_curve(
    search_fn: Callable[[np.ndarray, int], object],
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    param_grid: Sequence[Dict[str, object]],
) -> List[CurvePoint]:
    """Sweep engine knobs; yields (recall, throughput) per setting.

    ``search_fn(queries, k, **params)`` must return an object with an
    ``ids`` attribute of shape (nq, k) (a SearchResult).
    """
    points: List[CurvePoint] = []
    for params in param_grid:
        started = time.perf_counter()
        result = search_fn(queries, k, **params)
        elapsed = time.perf_counter() - started
        recall = recall_at_k(result.ids, truth_ids)
        points.append(
            CurvePoint(
                param=dict(params),
                recall=recall,
                throughput=len(queries) / elapsed if elapsed > 0 else float("inf"),
            )
        )
    return points
