"""Measurement primitives shared by every table/figure benchmark.

All timings go through :class:`repro.obs.Stopwatch` — the one
perf_counter-based primitive — so the bench harness doubles as a
profiling hook: with observability enabled, measurements land in the
active registry's histograms for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.datasets import recall_at_k
from repro.obs import Stopwatch


def measure_throughput(
    search_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
    repeats: int = 1,
) -> float:
    """Queries per second of ``search_fn`` over the batch.

    The paper measures throughput "by issuing 10,000 random queries";
    we pass the whole batch to the engine (engines that cannot batch
    pay their per-query costs internally, as they would in production).
    """
    best = np.inf
    for __ in range(max(1, repeats)):
        with Stopwatch("bench_search_seconds") as sw:
            search_fn(queries)
        best = min(best, sw.seconds)
    return len(queries) / best if best > 0 else float("inf")


@dataclass
class CurvePoint:
    """One point of a recall-throughput curve."""

    param: Dict[str, object]
    recall: float
    throughput: float


def recall_throughput_curve(
    search_fn: Callable[[np.ndarray, int], object],
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    param_grid: Sequence[Dict[str, object]],
) -> List[CurvePoint]:
    """Sweep engine knobs; yields (recall, throughput) per setting.

    ``search_fn(queries, k, **params)`` must return an object with an
    ``ids`` attribute of shape (nq, k) (a SearchResult).
    """
    points: List[CurvePoint] = []
    for params in param_grid:
        with Stopwatch("bench_search_seconds") as sw:
            result = search_fn(queries, k, **params)
        recall = recall_at_k(result.ids, truth_ids)
        points.append(
            CurvePoint(
                param=dict(params),
                recall=recall,
                throughput=(
                    len(queries) / sw.seconds if sw.seconds > 0 else float("inf")
                ),
            )
        )
    return points
