"""Benchmark harness utilities: timing, sweeps, and paper-style reports."""

from repro.bench.runner import (
    measure_throughput,
    recall_throughput_curve,
    CurvePoint,
)
from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    MEASUREMENT_KEYS,
    emit_bench_json,
    format_table,
    print_series,
    print_table,
)

__all__ = [
    "measure_throughput",
    "recall_throughput_curve",
    "CurvePoint",
    "print_table",
    "print_series",
    "format_table",
    "emit_bench_json",
    "BENCH_SCHEMA_VERSION",
    "MEASUREMENT_KEYS",
]
