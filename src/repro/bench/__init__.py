"""Benchmark harness utilities: timing, sweeps, and paper-style reports."""

from repro.bench.runner import (
    measure_throughput,
    recall_throughput_curve,
    CurvePoint,
)
from repro.bench.report import print_table, print_series, format_table

__all__ = [
    "measure_throughput",
    "recall_throughput_curve",
    "CurvePoint",
    "print_table",
    "print_series",
    "format_table",
]
