"""Plain-text tables/series formatted like the paper's figures report."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Monospace table with auto-sized columns."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title=None) -> None:
    print(format_table(headers, rows, title))
    print()


def print_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> None:
    """One figure series as aligned x/y pairs."""
    print(f"series: {name}")
    for x, y in zip(xs, ys):
        print(f"  {_fmt(x):>12} -> {_fmt(y)}")
    print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
