"""Plain-text tables/series formatted like the paper's figures report,
plus the uniform ``BENCH_<name>.json`` emitter.

Every benchmark ``main()`` funnels its measurements through
:func:`emit_bench_json` so all reports share one schema:

.. code-block:: json

    {"schema_version": 1, "name": "parallel",
     "workload": {...fixed workload parameters...},
     "series": [{...identity keys..., "qps": ..., "counters": {...}}]}

Identity keys (mode, system, strategy, knob values) name a series
entry; measurement keys (``qps``, ``recall``, ``latency_seconds``,
``counters``, ...) carry the numbers.  ``tools/bench_compare.py``
matches entries across two reports by their identity keys and flags
throughput regressions, so keeping the identity keys stable across
runs is what makes the benchmark trajectory diffable.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

#: bumped when the BENCH json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: series-entry keys that carry measurements rather than identity;
#: ``tools/bench_compare.py`` matches entries on everything else.
MEASUREMENT_KEYS = frozenset({
    "qps", "recall", "latency_seconds", "seconds",
    "p50", "p95", "p99", "speedup_vs_serial", "counters",
})


def _json_default(value: object):
    """Coerce numpy scalars/arrays so payloads stay json-serializable."""
    for attr in ("item",):
        if hasattr(value, attr):
            return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def emit_bench_json(
    name: str,
    workload: Dict[str, object],
    series: Sequence[Dict[str, object]],
    out_path: Optional[str] = None,
    **extra: object,
) -> Dict[str, object]:
    """Write ``BENCH_<name>.json`` and return the payload.

    ``series`` is a list of flat dicts mixing identity keys with
    measurement keys (see :data:`MEASUREMENT_KEYS`); ``extra`` lands
    top-level (e.g. ``bit_identical=True``).
    """
    payload: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "workload": dict(workload),
        "series": [dict(entry) for entry in series],
    }
    payload.update(extra)
    path = out_path or f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=_json_default)
    print(f"  wrote {path}")
    return payload


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Monospace table with auto-sized columns."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title=None) -> None:
    print(format_table(headers, rows, title))
    print()


def print_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> None:
    """One figure series as aligned x/y pairs."""
    print(f"series: {name}")
    for x, y in zip(xs, ys):
        print(f"  {_fmt(x):>12} -> {_fmt(y)}")
    print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
