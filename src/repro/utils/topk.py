"""Top-k machinery used across the query engine.

The paper's cache-aware design (Sec. 3.2.1) keeps one bounded heap per
(query, thread) pair and merges them at the end; :class:`TopKHeap` and
:func:`merge_topk` are those two primitives.  For fully vectorized
paths, :func:`topk_from_scores` extracts top-k directly from a score
array with ``argpartition``.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.metrics.base import Metric


class TopKHeap:
    """Bounded heap keeping the ``k`` best (id, score) pairs.

    Direction-agnostic: pass ``higher_is_better`` to match the metric.
    Internally a heap of ``(keyed_score, id)`` where ``keyed_score`` is
    negated for distance metrics so the root is always the current
    *worst* retained entry.
    """

    def __init__(self, k: int, higher_is_better: bool = False):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.higher_is_better = higher_is_better
        self._heap: List[Tuple[float, int]] = []

    def _key(self, score: float) -> float:
        return score if self.higher_is_better else -score

    def push(self, item_id: int, score: float) -> bool:
        """Offer one candidate; returns True when it was retained."""
        keyed = self._key(score)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (keyed, item_id))
            return True
        if keyed > self._heap[0][0]:
            heapq.heapreplace(self._heap, (keyed, item_id))
            return True
        return False

    def push_many(self, ids: Sequence[int], scores: Sequence[float]) -> None:
        """Offer a batch of candidates.

        Hot path in graph-index search: candidates worse than the
        current ``worst_score()`` are dropped by one vectorized compare
        before the Python-level heap loop.  The prefilter uses the
        worst score at batch start — conservative, since pushes only
        tighten it — and :meth:`push` still re-checks each survivor,
        so results are identical to the per-element loop.
        """
        ids = np.asarray(ids)
        scores = np.asarray(scores)
        if len(ids) == 0:
            return
        start = 0
        if not self.is_full():
            fill = min(self.k - len(self._heap), len(ids))
            for i in range(fill):
                self.push(int(ids[i]), float(scores[i]))
            start = fill
            if start >= len(ids):
                return
        worst = self.worst_score()
        if self.higher_is_better:
            mask = scores[start:] > worst
        else:
            mask = scores[start:] < worst
        for item_id, score in zip(ids[start:][mask], scores[start:][mask]):
            self.push(int(item_id), float(score))

    def worst_score(self) -> float:
        """Score of the current k-th best entry (the heap's root)."""
        if not self._heap:
            return -np.inf if self.higher_is_better else np.inf
        keyed = self._heap[0][0]
        return keyed if self.higher_is_better else -keyed

    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    def __len__(self) -> int:
        return len(self._heap)

    def items(self) -> List[Tuple[int, float]]:
        """Retained (id, score) pairs sorted best-first."""
        ordered = sorted(self._heap, key=lambda pair: pair[0], reverse=True)
        if self.higher_is_better:
            return [(item_id, keyed) for keyed, item_id in ordered]
        return [(item_id, -keyed) for keyed, item_id in ordered]


def topk_from_scores(
    scores: np.ndarray,
    k: int,
    higher_is_better: bool = False,
    ids: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract top-k (ids, scores) from a 1-D score array, best-first.

    Uses ``argpartition`` for the selection and a final sort of the k
    survivors, the standard O(n + k log k) pattern.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"expected 1-D scores, got shape {scores.shape}")
    n = scores.shape[0]
    k_eff = min(k, n)
    if k_eff == 0:
        empty_ids = np.empty(0, dtype=np.int64)
        return empty_ids, np.empty(0, dtype=scores.dtype)
    keyed = -scores if higher_is_better else scores
    if k_eff < n:
        part = np.argpartition(keyed, k_eff - 1)[:k_eff]
    else:
        part = np.arange(n)
    order = part[np.argsort(keyed[part], kind="stable")]
    out_ids = order if ids is None else np.asarray(ids)[order]
    return out_ids.astype(np.int64), scores[order]


def merge_topk(
    parts: Iterable[Tuple[np.ndarray, np.ndarray]],
    k: int,
    higher_is_better: bool = False,
    dtype: np.dtype | type | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge several already-computed (ids, scores) partial results.

    This is the per-thread heap merge of the cache-aware design and the
    per-segment merge used by LSM search.  ``dtype`` pins the score
    dtype of the empty result (default float32); non-empty results keep
    the input dtype as before.
    """
    all_ids: List[np.ndarray] = []
    all_scores: List[np.ndarray] = []
    for ids, scores in parts:
        if len(ids):
            all_ids.append(np.asarray(ids, dtype=np.int64))
            all_scores.append(np.asarray(scores))
    if not all_ids:
        empty_dtype = np.dtype(dtype) if dtype is not None else np.float32
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=empty_dtype)
    ids_cat = np.concatenate(all_ids)
    scores_cat = np.concatenate(all_scores)
    return topk_from_scores(scores_cat, k, higher_is_better, ids=ids_cat)


def merge_topk_batch(
    partials: Sequence[Tuple[np.ndarray, np.ndarray]],
    k: int,
    higher_is_better: bool = False,
    nq: int | None = None,
    dtype: np.dtype | type | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge padded ``(nq, k_i)`` partial results for *all* queries at once.

    Each partial is an ``(ids, scores)`` pair in the
    :class:`~repro.index.base.SearchResult` convention: ids padded with
    ``-1``, scores padded with the metric's worst value.  Replaces the
    per-query Python merge loop with one concatenate + ``argpartition``
    + stable argsort over the whole query block.

    Pad slots are keyed to ``+inf`` so they sort after every real
    candidate; surviving pads come back as ``(-1, worst)``.  Output is
    always ``(nq, k)``.  Score dtype follows the inputs (``dtype``
    overrides); ``nq`` is only required when ``partials`` is empty.
    """
    worst = -np.inf if higher_is_better else np.inf
    parts = [
        (np.atleast_2d(np.asarray(ids, dtype=np.int64)), np.atleast_2d(scores))
        for ids, scores in partials
    ]
    parts = [(ids, scores) for ids, scores in parts if ids.shape[1] > 0]
    if not parts:
        if nq is None:
            raise ValueError("nq is required when partials are empty")
        out_dtype = np.dtype(dtype) if dtype is not None else np.float32
        return (
            np.full((nq, k), -1, dtype=np.int64),
            np.full((nq, k), worst, dtype=out_dtype),
        )
    ids_cat = np.concatenate([ids for ids, __ in parts], axis=1)
    scores_cat = np.concatenate([scores for __, scores in parts], axis=1)
    if dtype is not None:
        scores_cat = scores_cat.astype(dtype, copy=False)
    n, total = ids_cat.shape
    if nq is not None and nq != n:
        raise ValueError(f"partials have {n} queries, expected {nq}")
    keyed = -scores_cat if higher_is_better else scores_cat.copy()
    keyed[ids_cat < 0] = np.inf
    k_eff = min(k, total)
    if k_eff < total:
        sel = np.argpartition(keyed, k_eff - 1, axis=1)[:, :k_eff]
    else:
        sel = np.broadcast_to(np.arange(total), (n, total))
    order = np.argsort(np.take_along_axis(keyed, sel, axis=1), axis=1, kind="stable")
    idx = np.take_along_axis(sel, order, axis=1)
    out_ids = np.take_along_axis(ids_cat, idx, axis=1)
    out_scores = np.take_along_axis(scores_cat, idx, axis=1)
    out_scores[out_ids < 0] = worst
    if k_eff < k:
        pad = k - k_eff
        out_ids = np.pad(out_ids, ((0, 0), (0, pad)), constant_values=-1)
        out_scores = np.pad(out_scores, ((0, 0), (0, pad)), constant_values=worst)
    return out_ids, out_scores


def merge_result_lists(
    parts: Iterable[Sequence[Tuple[int, float]]],
    k: int,
    metric: Metric,
) -> List[Tuple[int, float]]:
    """Merge lists of (id, score) pairs under ``metric`` ordering."""
    heap = TopKHeap(k, higher_is_better=metric.higher_is_better)
    for part in parts:
        for item_id, score in part:
            heap.push(item_id, score)
    return heap.items()
