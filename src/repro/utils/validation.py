"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

import numpy as np


def ensure_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_matrix(arr: np.ndarray, name: str, dtype=np.float32) -> np.ndarray:
    """Coerce ``arr`` to a 2-D array of ``dtype`` (1-D becomes one row)."""
    out = np.asarray(arr, dtype=dtype)
    if out.ndim == 1:
        out = out[np.newaxis, :]
    if out.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {out.shape}")
    if out.shape[1] == 0:
        raise ValueError(f"{name} must have at least one column")
    return out


def ensure_vector_dim(arr: np.ndarray, dim: int, name: str) -> np.ndarray:
    """Validate that a 2-D array has exactly ``dim`` columns."""
    if arr.shape[1] != dim:
        raise ValueError(
            f"{name} has dimension {arr.shape[1]}, expected {dim}"
        )
    return arr
