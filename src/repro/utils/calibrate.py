"""EWMA calibration of analytical cost models against measured work.

One :class:`EwmaCalibrator` maintains a multiplicative coefficient per
key (a filter strategy, a device id, ...) that scales a model's *raw*
estimate toward what execution actually measured.  Each observation
folds the ratio ``measured / predicted`` into the coefficient with an
exponentially weighted moving average:

    coef <- (1 - alpha) * coef + alpha * clamp(measured / predicted)

Everything is deterministic: no randomness, no wall-clock reads — two
runs feeding the same observation sequence produce bit-identical
coefficients, which is what lets seeded planner tests assert exact
choices.  State round-trips through plain JSON-safe dicts so callers
can persist calibration in a durable catalog (the LSM manifest).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = ["EwmaCalibrator"]

#: per-observation ratio clamp: one pathological query (empty bucket,
#: cold cache) must not swing a coefficient by orders of magnitude.
_RATIO_MIN = 0.05
_RATIO_MAX = 20.0


class EwmaCalibrator:
    """Per-key multiplicative correction factors, EWMA-updated.

    Args:
        alpha: EWMA weight of the newest observation.
        window: observations per key before that key counts as
            *calibrated* (the "calibration window"); consumers use
            :meth:`is_calibrated` to decide whether to trust the
            corrected estimate over the raw analytical one.
    """

    _GUARDED_BY = {"_coef": "_lock", "_count": "_lock", "_last_ratio": "_lock"}

    def __init__(self, alpha: float = 0.3, window: int = 8):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.alpha = float(alpha)
        self.window = int(window)
        self._lock = maybe_sanitize(threading.Lock(), "calibrate")
        self._coef: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self._last_ratio: Dict[str, float] = {}

    # -- updates -----------------------------------------------------------

    def observe(self, key: str, predicted: float, measured: float) -> float:
        """Fold one (predicted, measured) pair into ``key``'s coefficient.

        Returns the updated coefficient.  Observations with a
        non-positive prediction carry no ratio information and are
        ignored (the coefficient is returned unchanged).
        """
        if predicted <= 0.0 or measured < 0.0:
            return self.coefficient(key)
        ratio = min(max(measured / predicted, _RATIO_MIN), _RATIO_MAX)
        with self._lock:
            old = self._coef.get(key, 1.0)
            new = (1.0 - self.alpha) * old + self.alpha * ratio
            self._coef[key] = new
            self._count[key] = self._count.get(key, 0) + 1
            self._last_ratio[key] = ratio
            return new

    # -- reads -------------------------------------------------------------

    def coefficient(self, key: str) -> float:
        with self._lock:
            return self._coef.get(key, 1.0)

    def observations(self, key: str) -> int:
        with self._lock:
            return self._count.get(key, 0)

    def is_calibrated(self, key: str) -> bool:
        """True once ``key`` has seen a full calibration window."""
        with self._lock:
            return self._count.get(key, 0) >= self.window

    def correct(self, key: str, raw_estimate: float) -> float:
        """``raw_estimate`` scaled by ``key``'s learned coefficient."""
        return raw_estimate * self.coefficient(key)

    def residuals(self) -> Dict[str, Dict[str, object]]:
        """Per-key calibration report for EXPLAIN output.

        ``last_relative_error`` is ``|measured/predicted - 1|`` of the
        newest observation *after* correction by the coefficient that
        was in place when it arrived — the quantity the acceptance
        gate tracks toward +/-20%.
        """
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for key, coef in self._coef.items():
                ratio = self._last_ratio.get(key, 1.0)
                out[key] = {
                    "coefficient": coef,
                    "observations": self._count.get(key, 0),
                    "calibrated": self._count.get(key, 0) >= self.window,
                    "last_relative_error": abs(ratio / coef - 1.0),
                }
            return out

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "alpha": self.alpha,
                "window": self.window,
                "coef": dict(self._coef),
                "count": dict(self._count),
                "last_ratio": dict(self._last_ratio),
            }

    @classmethod
    def from_dict(cls, state: Optional[Dict[str, object]]) -> "EwmaCalibrator":
        if not state:
            return cls()
        cal = cls(
            alpha=float(state.get("alpha", 0.3)),
            window=int(state.get("window", 8)),
        )
        with cal._lock:
            cal._coef = {str(k): float(v) for k, v in state.get("coef", {}).items()}
            cal._count = {str(k): int(v) for k, v in state.get("count", {}).items()}
            cal._last_ratio = {
                str(k): float(v) for k, v in state.get("last_ratio", {}).items()
            }
        return cal
