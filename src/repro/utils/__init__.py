"""Shared utilities: bounded top-k heaps, result merging, validation."""

from repro.utils.topk import (
    TopKHeap,
    topk_from_scores,
    merge_topk,
    merge_result_lists,
)
from repro.utils.validation import (
    ensure_matrix,
    ensure_positive,
    ensure_vector_dim,
)

__all__ = [
    "TopKHeap",
    "topk_from_scores",
    "merge_topk",
    "merge_result_lists",
    "ensure_matrix",
    "ensure_positive",
    "ensure_vector_dim",
]
