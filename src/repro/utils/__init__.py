"""Shared utilities: top-k heaps, result merging, validation, retry, sanitizer."""

from repro.utils.arrays import (
    sorted_membership,
)
from repro.utils.calibrate import (
    EwmaCalibrator,
)
from repro.utils.retry import (
    RetryExhaustedError,
    RetryPolicy,
)
from repro.utils.sanitizer import (
    ThreadSanitizer,
    assert_guarded,
    maybe_sanitize,
)
from repro.utils.topk import (
    TopKHeap,
    topk_from_scores,
    merge_topk,
    merge_topk_batch,
    merge_result_lists,
)
from repro.utils.validation import (
    ensure_matrix,
    ensure_positive,
    ensure_vector_dim,
)

__all__ = [
    "sorted_membership",
    "EwmaCalibrator",
    "RetryExhaustedError",
    "RetryPolicy",
    "ThreadSanitizer",
    "assert_guarded",
    "maybe_sanitize",
    "TopKHeap",
    "topk_from_scores",
    "merge_topk",
    "merge_topk_batch",
    "merge_result_lists",
    "ensure_matrix",
    "ensure_positive",
    "ensure_vector_dim",
]
