"""Small shared ndarray helpers."""

from __future__ import annotations

import numpy as np


def sorted_membership(values: np.ndarray, sorted_ref: np.ndarray) -> np.ndarray:
    """Boolean mask of ``values`` present in the *sorted* ``sorted_ref``.

    The shared primitive behind every ``row_filter`` pushdown: one
    ``searchsorted`` per call, no set materialization.  ``sorted_ref``
    must be sorted ascending; ``values`` may be in any order.
    """
    values = np.asarray(values)
    if len(sorted_ref) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_ref, values)
    pos = np.minimum(pos, len(sorted_ref) - 1)
    return sorted_ref[pos] == values
