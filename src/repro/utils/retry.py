"""Bounded, seeded retry with exponential backoff.

Transient faults (a flaky shared object store, a reader momentarily
unreachable) should cost a client a retry, not an exception.
:class:`RetryPolicy` is the one retry implementation for the whole
stack — the REST router, the SDK, and the writer's shard-log append
all wrap their fallible calls in one.

Design points:

* **bounded** — at most ``max_attempts`` tries, and an optional
  per-call ``deadline`` budget accounted over the *planned* sleeps, so
  behaviour is deterministic rather than wall-clock dependent;
* **seeded jitter** — backoff is ``base_delay * multiplier**i`` capped
  at ``max_delay``, spread by ``±jitter`` drawn from a private
  ``random.Random(seed)``, so two runs of a chaos schedule sleep the
  same amounts;
* **selective** — only exception types in ``retryable`` are retried;
  anything else (including :class:`~repro.storage.faults.SimulatedCrash`)
  propagates immediately;
* **injectable sleep** — tests pass ``sleep=lambda s: None`` to run a
  full backoff schedule instantly while still recording it.

When attempts run out the last error is wrapped in
:class:`RetryExhaustedError` (chained via ``__cause__``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, List, Optional, Tuple, Type

from repro.obs import get_obs
from repro.obs import events as obs_events

__all__ = ["RetryExhaustedError", "RetryPolicy"]


class RetryExhaustedError(RuntimeError):
    """A retried call failed on every permitted attempt.

    ``attempts`` is how many times the call ran; the final underlying
    exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, attempts: int):
        super().__init__(message)
        self.attempts = attempts


@dataclass
class RetryPolicy:
    """Retry configuration + execution (see module docstring).

    One instance may be shared across calls; per-call state is local
    to :meth:`call`, only the aggregate counters and the jitter RNG
    live on the instance.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Tuple[Type[Exception], ...] = (IOError, TimeoutError, ConnectionError)
    deadline: Optional[float] = None
    sleep: Optional[Callable[[float], None]] = None
    # -- aggregate counters (introspection) --
    calls: int = field(default=0, init=False)
    retries: int = field(default=0, init=False)
    total_sleep: float = field(default=0.0, init=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        self._rng = Random(self.seed)

    def _delay(self, attempt: int) -> float:
        """Planned sleep after failed attempt ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return raw

    def preview_delays(self) -> List[float]:
        """The backoff schedule a fresh call would sleep through.

        Consumes the same RNG stream as a real call, so use a
        dedicated instance when previewing (tests do).
        """
        return [self._delay(i) for i in range(1, self.max_attempts)]

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Returns the first successful result; raises
        :class:`RetryExhaustedError` when attempts (or the deadline
        budget) run out, and re-raises non-retryable errors as-is.
        """
        self.calls += 1
        sleeper = self.sleep if self.sleep is not None else time.sleep
        slept = 0.0
        last_exc: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self.retryable as exc:
                last_exc = exc
                if attempt == self.max_attempts:
                    break
                delay = self._delay(attempt)
                if self.deadline is not None and slept + delay > self.deadline:
                    break
                self.retries += 1
                get_obs().registry.counter("retry_retries_total").inc()
                slept += delay
                self.total_sleep += delay
                sleeper(delay)
        obs = get_obs()
        obs.registry.counter("retry_exhausted_total").inc()
        obs.events.emit(
            obs_events.RETRY_EXHAUSTED,
            fn=getattr(fn, "__name__", str(fn)),
            attempts=attempt,
            error=type(last_exc).__name__ if last_exc is not None else "",
        )
        raise RetryExhaustedError(
            f"{getattr(fn, '__name__', fn)!r} failed after {attempt} attempt(s): "
            f"{last_exc}",
            attempts=attempt,
        ) from last_exc

    def wrap(self, fn: Callable) -> Callable:
        """Decorator form: a callable running ``fn`` under this policy."""

        def wrapped(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped
