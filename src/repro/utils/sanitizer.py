"""Opt-in runtime race sanitizer: lock-order and guarded-mutation checks.

Enabled with ``REPRO_SANITIZE=1`` (or :func:`enable` in tests), the
storage engine wraps its locks via :func:`maybe_sanitize`.  A
:class:`SanitizedLock` records per-thread acquisition order into a
process-wide "acquired-after" graph; acquiring lock role B while
holding role A records the edge A -> B, and a pre-existing reverse
edge B -> A means two code paths take the same pair of locks in
opposite orders — a potential deadlock — which is recorded as a
:class:`LockOrderViolation` instead of waiting for the interleaving
that actually hangs.

Locks are tracked by *role name* ("lsm", "manifest", "bufferpool",
...), not instance, so the discipline is a role hierarchy: every
instance of a role must sit at the same place in the global order.

:func:`assert_guarded` is the runtime twin of the ``lock-discipline``
static rule: mutation sites call it (it is a no-op when sanitizing is
off) and any call made without the guarding lock held is recorded as
an :class:`UnguardedMutation`.

When sanitizing is disabled (the default) :func:`maybe_sanitize`
returns the raw lock and :func:`assert_guarded` is a single ``is
None`` check, so production paths pay nothing.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderViolation",
    "UnguardedMutation",
    "SanitizedLock",
    "ThreadSanitizer",
    "enabled",
    "enable",
    "disable",
    "get_sanitizer",
    "maybe_sanitize",
    "assert_guarded",
]


@dataclass(frozen=True)
class LockOrderViolation:
    """Two lock roles acquired in both orders by some pair of code paths."""

    first: str   #: role held while acquiring ``second``
    second: str  #: role acquired while ``first`` was held
    thread: str  #: thread that closed the cycle


@dataclass(frozen=True)
class UnguardedMutation:
    """A guarded mutation executed without its lock held."""

    owner: str   #: e.g. ``"BufferPool"``
    fieldname: str
    lock_role: str
    thread: str


class ThreadSanitizer:
    """Process-wide lock-order graph and violation reports."""

    _GUARDED_BY = {
        "_edges": "_lock",
        "_reported_pairs": "_lock",
        "lock_order_violations": "_lock",
        "unguarded_mutations": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        #: role -> set of roles ever acquired while it was held.
        self._edges: Dict[str, Set[str]] = {}
        self._reported_pairs: Set[Tuple[str, str]] = set()
        self.lock_order_violations: List[LockOrderViolation] = []
        self.unguarded_mutations: List[UnguardedMutation] = []
        #: thread id -> roles currently held, in acquisition order.
        self._held = threading.local()

    # -- per-thread hold tracking ---------------------------------------

    def _held_stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_roles(self) -> Tuple[str, ...]:
        """Roles the calling thread currently holds (outermost first)."""
        return tuple(self._held_stack())

    # -- hooks called by SanitizedLock ----------------------------------

    def note_acquiring(self, role: str) -> None:
        """Record order edges for an acquisition attempt.

        Called *before* blocking on the real lock so an inversion is
        reported even when the process would go on to deadlock.
        """
        held = self._held_stack()
        if role in held:  # reentrant re-acquire: no new ordering info
            return
        with self._lock:
            for prior in held:
                if prior == role:
                    continue
                self._edges.setdefault(prior, set()).add(role)
                if prior in self._edges.get(role, ()):  # reverse edge exists
                    pair = tuple(sorted((prior, role)))
                    if pair not in self._reported_pairs:
                        self._reported_pairs.add(pair)
                        self.lock_order_violations.append(
                            LockOrderViolation(
                                first=prior,
                                second=role,
                                thread=threading.current_thread().name,
                            )
                        )

    def note_acquired(self, role: str) -> None:
        self._held_stack().append(role)

    def note_released(self, role: str) -> None:
        stack = self._held_stack()
        # Remove the innermost hold of this role (reentrant-safe).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == role:
                del stack[i]
                return

    def note_unguarded(self, owner: str, fieldname: str, lock_role: str) -> None:
        with self._lock:
            self.unguarded_mutations.append(
                UnguardedMutation(
                    owner=owner,
                    fieldname=fieldname,
                    lock_role=lock_role,
                    thread=threading.current_thread().name,
                )
            )

    # -- reporting -------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()
            self._reported_pairs.clear()
            self.lock_order_violations.clear()
            self.unguarded_mutations.clear()

    def report(self) -> Dict[str, list]:
        with self._lock:
            return {
                "lock_order_violations": list(self.lock_order_violations),
                "unguarded_mutations": list(self.unguarded_mutations),
            }

    def lock_order_edges(self) -> List[Tuple[str, str]]:
        """Every observed ``(held, acquired)`` role pair, sorted.

        This is the runtime twin of reprolint's static lock-order graph;
        the cross-check test (and ``python -m tools.reprolint
        --check-edges``) asserts these edges are a subset of the edges
        the whole-program analysis predicts.
        """
        with self._lock:
            return sorted(
                (held, acquired)
                for held, acquired_set in self._edges.items()
                for acquired in acquired_set
            )

    def dump_edges(self, path: str) -> None:
        """Write the observed edge list as JSON (for --check-edges)."""
        import json

        payload = {"edges": [list(edge) for edge in self.lock_order_edges()]}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


class SanitizedLock:
    """Wrapper adding acquisition-order tracking to a Lock/RLock.

    Drop-in for the ``with`` protocol plus ``acquire``/``release``/
    ``locked``.  Reentrancy is delegated to the wrapped lock; the
    sanitizer only counts the outermost hold per thread.
    """

    def __init__(self, inner, role: str, sanitizer: ThreadSanitizer):
        self._inner = inner
        self.role = role
        self._sanitizer = sanitizer
        self._hold_depth = threading.local()

    def _depth(self) -> int:
        return getattr(self._hold_depth, "n", 0)

    def _set_depth(self, n: int) -> None:
        self._hold_depth.n = n

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.note_acquiring(self.role)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self._depth() == 0:
                self._sanitizer.note_acquired(self.role)
            self._set_depth(self._depth() + 1)
        return acquired

    def release(self) -> None:
        self._inner.release()
        depth = self._depth() - 1
        self._set_depth(depth)
        if depth == 0:
            self._sanitizer.note_released(self.role)

    def held_by_current_thread(self) -> bool:
        return self._depth() > 0

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock(role={self.role!r}, inner={self._inner!r})"


# -- module-level switchboard ----------------------------------------------

_sanitizer: Optional[ThreadSanitizer] = None
_state_lock = threading.Lock()


def enabled() -> bool:
    """True when sanitizing is active (env var or :func:`enable`)."""
    return _sanitizer is not None or os.environ.get("REPRO_SANITIZE") == "1"


def get_sanitizer() -> ThreadSanitizer:
    """The process-wide sanitizer (created on first use)."""
    global _sanitizer
    with _state_lock:
        if _sanitizer is None:
            _sanitizer = ThreadSanitizer()
            _register_edges_dump()
        return _sanitizer


def enable() -> ThreadSanitizer:
    """Force sanitizing on (tests); returns the active sanitizer."""
    return get_sanitizer()


def disable() -> None:
    """Turn sanitizing off and drop the collected reports."""
    global _sanitizer
    with _state_lock:
        _sanitizer = None


def maybe_sanitize(lock, role: str):
    """Wrap ``lock`` for sanitizing when enabled; else return it as-is.

    Locks are wrapped at construction time, so enable sanitizing
    *before* building the collections under test.
    """
    if enabled():
        return SanitizedLock(lock, role, get_sanitizer())
    return lock


#: set REPRO_SANITIZE_EDGES=<path> (with REPRO_SANITIZE=1) to dump the
#: observed lock-order edges to <path> at interpreter exit; CI feeds the
#: dump to ``python -m tools.reprolint --check-edges``.
_edges_dump_registered = False


def _register_edges_dump() -> None:
    global _edges_dump_registered
    path = os.environ.get("REPRO_SANITIZE_EDGES")
    if not path or _edges_dump_registered:
        return
    _edges_dump_registered = True
    import atexit

    def _dump() -> None:
        if _sanitizer is not None:
            try:
                _sanitizer.dump_edges(path)
            except OSError:
                pass

    atexit.register(_dump)


def assert_guarded(lock, owner: str, fieldname: str) -> None:
    """Runtime guarded-mutation probe (no-op unless sanitizing).

    Call from a mutation site with the lock that is supposed to guard
    it; records an :class:`UnguardedMutation` when the calling thread
    does not hold it.
    """
    if _sanitizer is None:
        return
    if isinstance(lock, SanitizedLock) and not lock.held_by_current_thread():
        _sanitizer.note_unguarded(owner, fieldname, lock.role)
