"""Faiss-the-library baseline: an index, not a system.

"They are algorithms and libraries, not a full-fledged system ...
assume data to be static once ingested ... not optimized for the
heterogeneous computing architecture."  Query execution is one query
at a time (the OpenMP thread-per-query model of Sec. 3.2.1's
"original implementation"), which in this substrate means no batched
GEMM — the honest architectural cost.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.index import create_index
from repro.index.base import SearchResult


class LibraryStyleEngine(BaselineEngine):
    """Bare index with per-query execution and static data."""

    name = "library"

    def __init__(self, index_type: str = "IVF_FLAT", metric: str = "l2", **index_params):
        self.index_type = index_type
        self.metric = metric
        self.index_params = index_params
        self._index = None

    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        self._index = create_index(
            self.index_type, data.shape[1], metric=self.metric, **self.index_params
        )
        if self._index.requires_training:
            self._index.train(data)
        self._index.add(data)

    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        if self._index is None:
            raise RuntimeError("fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        # One query at a time: the library's thread-per-query model.
        rows = [self._index.search(queries[i : i + 1], k, **params) for i in range(len(queries))]
        ids = np.concatenate([r.ids for r in rows])
        scores = np.concatenate([r.scores for r in rows])
        return SearchResult(ids, scores)

    def capabilities(self) -> Dict[str, bool]:
        return {
            "billion_scale": True,
            "dynamic_data": False,
            "gpu": True,
            "attribute_filtering": False,
            "multi_vector_query": False,
            "distributed": False,
        }

    def memory_bytes(self) -> int:
        return 0 if self._index is None else self._index.memory_bytes()
