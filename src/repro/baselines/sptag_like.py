"""SPTAG-class baseline: tree-based, static, memory-hungry.

Microsoft SPTAG combines balanced k-means trees with a relative
neighborhood graph; its layout keeps per-tree structures referencing
full vector copies, which is behind the paper's observation that
"SPTAG takes 14x more memory than Milvus (17.88GB vs. 1.27GB)" and
that it "cannot achieve very high recall (e.g., 0.99)".  The stand-in
is an RP-tree forest where every tree owns a materialized copy of its
vectors, searched one query at a time, with no dynamic data support.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.index import AnnoyIndex
from repro.index.base import SearchResult


class SPTAGLikeEngine(BaselineEngine):
    """Tree forest with per-tree vector copies and static data."""

    name = "sptag-like"

    def __init__(self, n_trees: int = 12, leaf_size: int = 48, metric: str = "l2"):
        self.n_trees = n_trees
        self.leaf_size = leaf_size
        self.metric = metric
        self._index: Optional[AnnoyIndex] = None
        #: per-tree materialized vector copies (the memory tax).
        self._tree_copies: List[np.ndarray] = []

    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        self._index = AnnoyIndex(
            data.shape[1], metric=self.metric,
            n_trees=self.n_trees, leaf_size=self.leaf_size,
        )
        self._index.add(data)
        self._index.build()
        self._tree_copies = [data.copy() for __ in range(self.n_trees)]

    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        if self._index is None:
            raise RuntimeError("fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        rows = [
            self._index.search(queries[i : i + 1], k, **params)
            for i in range(len(queries))
        ]
        return SearchResult(
            np.concatenate([r.ids for r in rows]),
            np.concatenate([r.scores for r in rows]),
        )

    def capabilities(self) -> Dict[str, bool]:
        return {
            "billion_scale": True,
            "dynamic_data": False,
            "gpu": False,
            "attribute_filtering": False,
            "multi_vector_query": False,
            "distributed": False,
        }

    def memory_bytes(self) -> int:
        total = 0 if self._index is None else self._index.memory_bytes()
        total += sum(copy.nbytes for copy in self._tree_copies)
        return total
