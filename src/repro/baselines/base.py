"""Common interface for benchmark engines (ours and the baselines)."""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.index.base import SearchResult

#: Table 1 columns, in paper order.
CAPABILITY_KEYS = (
    "billion_scale",
    "dynamic_data",
    "gpu",
    "attribute_filtering",
    "multi_vector_query",
    "distributed",
)


class BaselineEngine(abc.ABC):
    """One engine under benchmark: fit once, search many."""

    name: str = ""

    @abc.abstractmethod
    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        """Ingest the dataset (and optional scalar attribute)."""

    @abc.abstractmethod
    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        """Batched top-k."""

    def filtered_search(
        self, queries: np.ndarray, k: int, low: float, high: float, **params
    ) -> SearchResult:
        """Attribute-filtered top-k; engines without the feature raise."""
        raise NotImplementedError(f"{self.name} does not support attribute filtering")

    @abc.abstractmethod
    def capabilities(self) -> Dict[str, bool]:
        """The engine's Table 1 row."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        ...

    def capability_row(self) -> Tuple[str, ...]:
        caps = self.capabilities()
        return tuple("yes" if caps[key] else "no" for key in CAPABILITY_KEYS)
