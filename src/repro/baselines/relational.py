"""Relational-extension baseline (AnalyticDB-V / PASE / Systems B, C).

"They follow the one-size-fits-all approach to extend relational
databases ... Legacy database components such as optimizer and storage
engine prevent fine-tuned optimizations for vectors."  The stand-in
is a row store whose executor is volcano-style: every candidate row
flows through a generic tuple interface one at a time, and distance
is computed per row — the per-tuple interpretation overhead a
relational engine pays that a purpose-built engine does not.

Two modes mirror the paper's commercial systems:

* ``use_index=False`` — System B's observed behaviour: brute-force
  scan of the vector column (its parameter tuning was disabled).
* ``use_index=True`` — System C-style: an IVF "vector column index"
  prunes candidates, but rows still come back through the tuple
  interface.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.index import KMeans
from repro.index.base import SearchResult
from repro.index.kmeans import assign_to_centroids
from repro.metrics import get_metric
from repro.utils import TopKHeap


class RelationalVectorEngine(BaselineEngine):
    """Row store + volcano executor with an optional vector-column index."""

    name = "relational"

    def __init__(
        self, metric: str = "l2", use_index: bool = False, nlist: int = 64, seed: int = 0
    ):
        self.metric = get_metric(metric)
        self.use_index = use_index
        self.nlist = nlist
        self.seed = seed
        #: the row store: list of (row_id, vector, attribute) tuples.
        self._rows: List[Tuple[int, np.ndarray, float]] = []
        self._centroids: Optional[np.ndarray] = None
        self._buckets: Optional[Dict[int, List[int]]] = None

    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        if attributes is None:
            attributes = np.zeros(len(data))
        self._rows = [
            (int(i), data[i].copy(), float(attributes[i])) for i in range(len(data))
        ]
        if self.use_index:
            nlist = min(self.nlist, max(len(data) // 4, 1))
            km = KMeans(nlist, max_iter=10, seed=self.seed)
            km.fit(data)
            self._centroids = km.centroids
            labels, __ = assign_to_centroids(data, self._centroids)
            buckets: Dict[int, List[int]] = {}
            for i, label in enumerate(labels):
                buckets.setdefault(int(label), []).append(i)
            self._buckets = buckets

    # -- the volcano executor ------------------------------------------------

    def _scan(self, row_positions: Optional[List[int]] = None) -> Iterator[Tuple[int, np.ndarray, float]]:
        """Tuple-at-a-time scan operator."""
        if row_positions is None:
            yield from self._rows
        else:
            for pos in row_positions:
                yield self._rows[pos]

    def _candidate_positions(self, query: np.ndarray, nprobe: int) -> Optional[List[int]]:
        if not self.use_index or self._centroids is None:
            return None
        dists = ((self._centroids - query) ** 2).sum(axis=1)
        probe = np.argsort(dists)[:nprobe]
        positions: List[int] = []
        for bucket in probe:
            positions.extend(self._buckets.get(int(bucket), ()))
        return positions

    def _execute(
        self, query: np.ndarray, k: int, predicate, nprobe: int
    ) -> List[Tuple[int, float]]:
        heap = TopKHeap(k, higher_is_better=self.metric.higher_is_better)
        positions = self._candidate_positions(query, nprobe)
        for row_id, vector, attr in self._scan(positions):
            if predicate is not None and not predicate(attr):
                continue
            # Per-row distance: the per-tuple cost a generic executor pays.
            score = self.metric.single(query, vector)
            heap.push(row_id, score)
        return heap.items()

    # -- public API ---------------------------------------------------------------

    def search(self, queries: np.ndarray, k: int, nprobe: int = 8, **params) -> SearchResult:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out = SearchResult.empty(len(queries), k, self.metric)
        for qi in range(len(queries)):
            for j, (row_id, score) in enumerate(
                self._execute(queries[qi], k, None, nprobe)
            ):
                out.ids[qi, j] = row_id
                out.scores[qi, j] = score
        return out

    def filtered_search(
        self, queries: np.ndarray, k: int, low: float, high: float,
        nprobe: int = 8, **params,
    ) -> SearchResult:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out = SearchResult.empty(len(queries), k, self.metric)
        predicate = lambda attr: low <= attr <= high
        for qi in range(len(queries)):
            for j, (row_id, score) in enumerate(
                self._execute(queries[qi], k, predicate, nprobe)
            ):
                out.ids[qi, j] = row_id
                out.scores[qi, j] = score
        return out

    def capabilities(self) -> Dict[str, bool]:
        return {
            "billion_scale": self.use_index,
            "dynamic_data": True,
            "gpu": False,
            "attribute_filtering": True,
            "multi_vector_query": False,
            "distributed": True,
        }

    def memory_bytes(self) -> int:
        per_row_overhead = 64  # tuple header + pointers a row store pays
        total = sum(vec.nbytes + per_row_overhead for __, vec, __a in self._rows)
        if self._centroids is not None:
            total += self._centroids.nbytes
        return total
