"""Baseline engines standing in for the paper's comparison systems.

The paper compares Milvus against Jingdong Vearch, Microsoft SPTAG,
and three anonymized commercial systems (A, B, C).  We cannot run
those; instead each *architectural class* is built honestly in-repo,
so who-wins-and-roughly-by-how-much emerges from real executions:

* :class:`LibraryStyleEngine` — Faiss-the-library: a bare in-memory
  index, one query at a time, static data, no system features.
* :class:`VearchLikeEngine` — a vector-search service: IVF under a
  per-query request path that pays (de)serialization per call.
* :class:`SPTAGLikeEngine` — tree-based (SPTAG class): an RP-tree
  forest that duplicates vectors per tree (the memory-hungry layout
  behind the paper's "SPTAG takes 14x more memory" note); static data.
* :class:`RelationalVectorEngine` — the one-size-fits-all class
  (AnalyticDB-V / PASE / System B / System C): a row store with a
  volcano-style row-at-a-time executor, optionally with an IVF
  "vector column index" that still fetches rows through the tuple
  interface.
* :class:`MilvusEngine` — our system behind the same bench interface,
  using the bucket-major batched execution.

Table 1's feature matrix regenerates from each engine's
``capabilities()``.
"""

from repro.baselines.base import BaselineEngine, CAPABILITY_KEYS
from repro.baselines.library_style import LibraryStyleEngine
from repro.baselines.vearch_like import VearchLikeEngine
from repro.baselines.sptag_like import SPTAGLikeEngine
from repro.baselines.relational import RelationalVectorEngine
from repro.baselines.milvus_adapter import MilvusEngine

__all__ = [
    "BaselineEngine",
    "CAPABILITY_KEYS",
    "LibraryStyleEngine",
    "VearchLikeEngine",
    "SPTAGLikeEngine",
    "RelationalVectorEngine",
    "MilvusEngine",
]
