"""Vearch-class baseline: a vector search *service*.

Vearch (Jingdong) fronts Faiss-style IVF with a document-engine
request path: every query arrives as a serialized request, is routed,
deserialized, executed individually, and the hits are serialized back.
That per-request tax plus per-query (unbatched) execution is the
architectural difference the paper measures ("Milvus is 6.4x ~ 47.0x
faster than Vearch"); both costs are paid for real here.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.index import create_index
from repro.index.base import SearchResult
from repro.metrics import get_metric


class VearchLikeEngine(BaselineEngine):
    """IVF/HNSW behind a per-query serialize-route-execute path."""

    name = "vearch-like"

    def __init__(self, index_type: str = "IVF_FLAT", metric: str = "l2", **index_params):
        self.index_type = index_type
        self.metric = get_metric(metric)
        self.index_params = index_params
        self._index = None
        self._attrs: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        self._index = create_index(
            self.index_type, data.shape[1], metric=self.metric.name, **self.index_params
        )
        if self._index.requires_training:
            self._index.train(data)
        self._index.add(data)
        if attributes is not None:
            self._attrs = np.asarray(attributes, dtype=np.float64)

    def add(self, data: np.ndarray) -> None:
        """Vearch supports dynamic appends."""
        self._index.add(np.asarray(data, dtype=np.float32))

    def _request_roundtrip(self, query: np.ndarray, hits) -> None:
        """The per-request (de)serialization a service pays."""
        request = json.dumps({"vector": query.tolist(), "size": len(hits)})
        json.loads(request)
        response = json.dumps(
            [{"id": int(i), "score": float(s)} for i, s in hits]
        )
        json.loads(response)

    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        if self._index is None:
            raise RuntimeError("fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        rows = []
        for i in range(len(queries)):
            result = self._index.search(queries[i : i + 1], k, **params)
            self._request_roundtrip(queries[i], result.row(0))
            rows.append(result)
        return SearchResult(
            np.concatenate([r.ids for r in rows]),
            np.concatenate([r.scores for r in rows]),
        )

    def filtered_search(
        self, queries: np.ndarray, k: int, low: float, high: float, **params
    ) -> SearchResult:
        """Post-filtering with over-fetch (the service-side approach)."""
        if self._attrs is None:
            raise RuntimeError("fit() with attributes first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out = SearchResult.empty(len(queries), k, self.metric)
        for qi in range(len(queries)):
            fetch = k * 4
            kept = []
            while True:
                fetch_eff = min(fetch, self._index.ntotal)
                result = self._index.search(queries[qi : qi + 1], fetch_eff, **params)
                ids = result.ids[0]
                ids = ids[ids >= 0]
                scores = result.scores[0][: len(ids)]
                passing = (self._attrs[ids] >= low) & (self._attrs[ids] <= high)
                kept = list(zip(ids[passing].tolist(), scores[passing].tolist()))
                if len(kept) >= k or fetch_eff >= self._index.ntotal:
                    break
                fetch *= 4
            self._request_roundtrip(queries[qi], kept[:k])
            for j, (item_id, score) in enumerate(kept[:k]):
                out.ids[qi, j] = item_id
                out.scores[qi, j] = score
        return out

    def capabilities(self) -> Dict[str, bool]:
        return {
            "billion_scale": False,
            "dynamic_data": True,
            "gpu": True,
            "attribute_filtering": True,
            "multi_vector_query": False,
            "distributed": True,
        }

    def memory_bytes(self) -> int:
        return 0 if self._index is None else self._index.memory_bytes()
