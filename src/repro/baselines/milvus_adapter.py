"""Our system behind the benchmark interface.

Uses the bucket-major batched execution (the cache-aware design) for
IVF indexes and plain batched search otherwise, plus strategy-D
attribute filtering — i.e. the engine as a user of this library would
actually run it.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.filtering import AttributeFilterEngine
from repro.hetero.batched import BatchedIVFSearcher
from repro.index import create_index
from repro.index.base import SearchResult
from repro.index.ivf_common import IVFIndexBase
from repro.metrics import get_metric


class MilvusEngine(BaselineEngine):
    """The reproduction's engine: batched, filtered, full-featured."""

    name = "milvus"

    def __init__(
        self,
        index_type: str = "IVF_FLAT",
        metric: str = "l2",
        filter_strategy: str = "D",
        **index_params,
    ):
        self.index_type = index_type
        self.metric = get_metric(metric)
        self.filter_strategy = filter_strategy
        self.index_params = index_params
        self._index = None
        self._batched: Optional[BatchedIVFSearcher] = None
        self._filter_engine: Optional[AttributeFilterEngine] = None

    def fit(self, data: np.ndarray, attributes: Optional[np.ndarray] = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        self._index = create_index(
            self.index_type, data.shape[1], metric=self.metric.name, **self.index_params
        )
        if self._index.requires_training:
            self._index.train(data)
        self._index.add(data)
        self._index.warm()
        if isinstance(self._index, IVFIndexBase):
            self._batched = BatchedIVFSearcher(self._index)
        if attributes is not None:
            self._filter_engine = AttributeFilterEngine(
                data, attributes, metric=self.metric.name, index=self._index
            )

    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        if self._index is None:
            raise RuntimeError("fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self._batched is not None:
            return self._batched.search(queries, k, nprobe=int(params.get("nprobe", 8)))
        return self._index.search(queries, k, **params)

    def filtered_search(
        self, queries: np.ndarray, k: int, low: float, high: float, **params
    ) -> SearchResult:
        if self._filter_engine is None:
            raise RuntimeError("fit() with attributes first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out = SearchResult.empty(len(queries), k, self.metric)
        for qi in range(len(queries)):
            result = self._filter_engine.search(
                queries[qi], low, high, k, strategy=self.filter_strategy, **params
            )
            out.ids[qi, : len(result.ids)] = result.ids[:k]
            out.scores[qi, : len(result.scores)] = result.scores[:k]
        return out

    def capabilities(self) -> Dict[str, bool]:
        return {
            "billion_scale": True,
            "dynamic_data": True,
            "gpu": True,
            "attribute_filtering": True,
            "multi_vector_query": True,
            "distributed": True,
        }

    def memory_bytes(self) -> int:
        return 0 if self._index is None else self._index.memory_bytes()
