"""Python SDK, mirroring the pymilvus verb set over an embedded server.

Client-side observability: each query verb opens a root span
(``sdk.search``, ``client.search``) so a single SDK call yields a
retrievable trace tree spanning client -> server/cluster -> readers ->
index search -> storage reads (see docs/INTERNALS.md §12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import (
    AttributeField,
    CategoricalField,
    CollectionSchema,
    MilvusLite,
    ServerConfig,
    VectorField,
)
from repro.obs import get_obs
from repro.utils.retry import RetryPolicy


def connect(
    config: Optional[ServerConfig] = None, retry: Optional[RetryPolicy] = None
) -> "MilvusClient":
    """Open a client against a fresh embedded server instance."""
    return MilvusClient(MilvusLite(config), retry=retry)


class MilvusClient:
    """Thin, name-based convenience wrapper around :class:`MilvusLite`.

    An optional :class:`RetryPolicy` shields every data-plane verb
    (insert/delete/flush/search/...) from transient storage faults:
    retryable errors cost backed-off re-attempts instead of surfacing,
    up to the policy's attempt/deadline budget.  Control-plane verbs
    (create/drop collection) stay un-retried — they are not idempotent.
    """

    def __init__(self, server: MilvusLite, retry: Optional[RetryPolicy] = None):
        self.server = server
        self.retry = retry

    def _call(self, fn, *args, **kwargs):
        if self.retry is not None:
            return self.retry.call(fn, *args, **kwargs)
        return fn(*args, **kwargs)

    # -- collection management -----------------------------------------

    def create_collection(
        self,
        name: str,
        vector_fields: Dict[str, Tuple[int, str]],
        attribute_fields: Sequence[str] = (),
        categorical_fields: Sequence = (),
        **kwargs,
    ):
        """Create a collection from plain dicts.

        ``vector_fields`` maps field name -> (dim, metric).
        ``categorical_fields`` entries are names or (name, index_kind)
        pairs.
        """
        cats = []
        for entry in categorical_fields:
            if isinstance(entry, str):
                cats.append(CategoricalField(entry))
            else:
                cats.append(CategoricalField(*entry))
        schema = CollectionSchema(
            name=name,
            vector_fields=[
                VectorField(fname, dim, metric)
                for fname, (dim, metric) in vector_fields.items()
            ],
            attribute_fields=[AttributeField(a) for a in attribute_fields],
            categorical_fields=cats,
        )
        return self.server.create_collection(schema, **kwargs)

    def drop_collection(self, name: str) -> None:
        self.server.drop_collection(name)

    def list_collections(self) -> List[str]:
        return self.server.list_collections()

    def has_collection(self, name: str) -> bool:
        return self.server.has_collection(name)

    def describe_collection(self, name: str) -> Dict[str, object]:
        return self.server.get_collection(name).describe()

    # -- data plane -------------------------------------------------------

    def insert(self, collection: str, data: Dict[str, np.ndarray]) -> np.ndarray:
        # Safe to retry: the engine acknowledges only after the WAL
        # append lands, and a transient fault fires before any state
        # changes, so a retried attempt never double-applies.
        return self._call(self.server.get_collection(collection).insert, data)

    def delete(self, collection: str, ids: Sequence[int]) -> None:
        self._call(self.server.get_collection(collection).delete, ids)

    def flush(self, collection: Optional[str] = None) -> None:
        if collection is None:
            self._call(self.server.flush_all)
        else:
            self._call(self.server.get_collection(collection).flush)

    def create_index(
        self, collection: str, field: str, index_type: str = "IVF_FLAT", **params
    ) -> int:
        return self._call(
            self.server.get_collection(collection).create_index,
            field, index_type, **params,
        )

    # -- queries -------------------------------------------------------------

    def search(
        self,
        collection: str,
        field: str,
        queries: np.ndarray,
        k: int,
        filter: Optional[Tuple[str, float, float]] = None,
        explain: bool = False,
        **params,
    ):
        """Vector query (optionally filtered); returns per-query hit lists.

        ``params`` ride through to :meth:`Collection.search` — index
        knobs (``nprobe``, ``ef``) plus the intra-query parallelism
        knobs ``parallel=`` / ``pool_size=`` (see :mod:`repro.exec`;
        parallel results are bit-identical to serial).

        With ``explain=True`` the return value is instead a dict with
        ``"hits"`` (the same per-query lists), ``"plan"`` (the planner
        dump from :func:`repro.obs.explain.explain_search`), and
        ``"profile"`` (the executed query's work-counter tree).
        """
        with get_obs().tracer.span(
            "sdk.search", collection=collection, field=field, k=k
        ):
            result = self._call(
                self.server.get_collection(collection).search,
                field, queries, k, filter=filter, explain=explain, **params,
            )
        if explain:
            hits = [result.result.row(i) for i in range(result.result.nq)]
            return {
                "hits": hits,
                "plan": result.plan,
                "profile": result.profile.to_dict(),
            }
        return [result.row(i) for i in range(result.nq)]

    def multi_vector_search(
        self,
        collection: str,
        queries: Dict[str, np.ndarray],
        k: int,
        weights: Optional[Dict[str, float]] = None,
        method: str = "auto",
        **params,
    ) -> List[List[Tuple[int, float]]]:
        return self._call(
            self.server.get_collection(collection).multi_vector_search,
            queries, k, weights=weights, method=method, **params,
        )

    def get_vectors(self, collection: str, field: str, ids: Sequence[int]) -> np.ndarray:
        return self._call(
            self.server.get_collection(collection).fetch_vectors, field, ids
        )

    def count(self, collection: str) -> int:
        return self.server.get_collection(collection).num_entities

    # -- operational health (INTERNALS §19) -----------------------------
    #
    # Thin accessors over the process-global observability handle, so
    # scripts and dashboards read the same data as the REST routes
    # without building a router.  With observability off they return
    # the null objects' empty shapes.

    def health(self) -> Dict[str, object]:
        """Watchdog rollup: status + per-component detail."""
        return get_obs().health.report()

    def events(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Newest ``limit`` journal events (all when ``None``), newest first."""
        return [
            e.to_dict()
            for e in get_obs().events.events(limit=limit, newest_first=True)
        ]

    def jobs(self) -> Dict[str, object]:
        """Background-job registry snapshot: running, finished, queues."""
        return get_obs().jobs.snapshot()

    def usage(self, collection: Optional[str] = None):
        """Per-collection usage accounting; one record or the full map."""
        meter = get_obs().usage
        if collection is not None:
            return meter.collection(collection)
        return meter.snapshot()


class ClusterClient:
    """SDK facade over a :class:`~repro.distributed.cluster.MilvusCluster`.

    The distributed twin of :class:`MilvusClient`: same retry
    semantics, and every query opens a ``client.search`` root span so
    one SDK call produces a full trace tree — client -> cluster fan-out
    -> every reader -> index search.
    """

    def __init__(self, cluster, retry: Optional[RetryPolicy] = None):
        self.cluster = cluster
        self.retry = retry

    def _call(self, fn, *args, **kwargs):
        if self.retry is not None:
            return self.retry.call(fn, *args, **kwargs)
        return fn(*args, **kwargs)

    def insert(self, row_ids: np.ndarray, vectors: np.ndarray) -> None:
        with get_obs().tracer.span("client.insert", rows=len(row_ids)):
            self._call(self.cluster.insert, row_ids, vectors)

    def sync(self, build_indexes: bool = True) -> None:
        self._call(self.cluster.sync, build_indexes=build_indexes)

    def search(self, queries: np.ndarray, k: int, **params):
        """Fan-out query; returns the cluster's ClusterSearchResult
        (including ``trace_id`` when tracing is on).

        ``params`` ride through to :meth:`MilvusCluster.search`,
        including ``parallel=`` / ``pool_size=`` / ``node_timeout=``
        for pooled reader fan-out (see :mod:`repro.exec`).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        with get_obs().tracer.span("client.search", nq=len(queries), k=k):
            return self._call(self.cluster.search, queries, k, **params)
