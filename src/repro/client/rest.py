"""RESTful-style JSON API (paper Sec. 2.1).

A transport-agnostic router: ``handle(method, path, body)`` takes and
returns JSON-compatible dicts, so any HTTP framework can mount it with
a three-line adapter.  Routes follow the Milvus REST conventions:

=======  ==================================  =============================
Method   Path                                Action
=======  ==================================  =============================
POST     /collections                        create collection
GET      /collections                        list collections
GET      /collections/{name}                 describe collection
DELETE   /collections/{name}                 drop collection
POST     /collections/{name}/entities        insert entities
DELETE   /collections/{name}/entities        delete by ids
POST     /collections/{name}/search          vector / filtered search
POST     /collections/{name}/multi_search    multi-vector search
POST     /collections/{name}/index           build index
POST     /explain                            EXPLAIN/ANALYZE one search
POST     /flush                              flush one or all collections
GET      /metrics                            Prometheus text exposition
GET      /traces                             known trace ids
GET      /traces/{trace_id}                  one query's span tree
GET      /profiles                           retained profile trace ids
GET      /profiles/{trace_id}                one query's work profile
GET      /slowlog                            slow-query ring buffer
=======  ==================================  =============================

The observability routes read the process-global handle from
:mod:`repro.obs`; with observability disabled ``/metrics`` returns the
placeholder comment and ``/traces`` is empty.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.client.sdk import MilvusClient
from repro.core import MilvusLite, MilvusError
from repro.obs import get_obs
from repro.utils.retry import RetryExhaustedError, RetryPolicy


@dataclass
class RestResponse:
    """Status code + JSON-compatible body."""

    status: int
    body: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestRouter:
    """Route table + handlers over one embedded server.

    A :class:`RetryPolicy` (optional) rides on the underlying SDK
    client: transient storage faults cost retries, and only an
    exhausted budget surfaces — as ``503 Service Unavailable``, the
    REST contract for "try again later".
    """

    def __init__(
        self,
        server: Optional[MilvusLite] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.client = MilvusClient(server or MilvusLite(), retry=retry)
        self._routes: List[Tuple[str, re.Pattern, object]] = [
            ("POST", re.compile(r"^/collections$"), self._create_collection),
            ("GET", re.compile(r"^/collections$"), self._list_collections),
            ("GET", re.compile(r"^/collections/(?P<name>\w+)$"), self._describe),
            ("DELETE", re.compile(r"^/collections/(?P<name>\w+)$"), self._drop),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/entities$"), self._insert),
            ("DELETE", re.compile(r"^/collections/(?P<name>\w+)/entities$"), self._delete),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/search$"), self._search),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/multi_search$"), self._multi_search),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/index$"), self._index),
            ("POST", re.compile(r"^/explain$"), self._explain),
            ("POST", re.compile(r"^/flush$"), self._flush),
            ("GET", re.compile(r"^/stats$"), self._server_stats),
            ("GET", re.compile(r"^/collections/(?P<name>\w+)/stats$"), self._collection_stats),
            ("GET", re.compile(r"^/metrics$"), self._metrics),
            ("GET", re.compile(r"^/traces$"), self._traces),
            ("GET", re.compile(r"^/traces/(?P<trace_id>\w+)$"), self._trace),
            ("GET", re.compile(r"^/profiles$"), self._profiles),
            ("GET", re.compile(r"^/profiles/(?P<trace_id>\w+)$"), self._profile),
            ("GET", re.compile(r"^/slowlog$"), self._slowlog),
        ]

    def handle(self, method: str, path: str, body: Optional[dict] = None) -> RestResponse:
        """Dispatch one request; errors map to 4xx with a message body.

        Every request runs inside a ``rest.request`` span and lands in
        ``rest_requests_total{method,status}`` / ``rest_request_seconds``.
        """
        obs = get_obs()
        with obs.tracer.span("rest.request", method=method.upper(), path=path):
            started = time.perf_counter()
            response = self._dispatch(method, path, body or {})
            elapsed = time.perf_counter() - started
        obs.registry.counter(
            "rest_requests_total", method=method.upper(), status=response.status
        ).inc()
        obs.registry.histogram("rest_request_seconds").observe(elapsed)
        return response

    def _dispatch(self, method: str, path: str, body: dict) -> RestResponse:
        for route_method, pattern, handler in self._routes:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match:
                try:
                    return handler(body, **match.groupdict())
                except RetryExhaustedError as exc:
                    return RestResponse(
                        503,
                        {"error": str(exc), "attempts": exc.attempts,
                         "retryable": True},
                    )
                except MilvusError as exc:
                    return RestResponse(400, {"error": str(exc)})
                except KeyError as exc:
                    return RestResponse(400, {"error": f"missing field: {exc}"})
                except (ValueError, TypeError) as exc:
                    return RestResponse(400, {"error": str(exc)})
        return RestResponse(404, {"error": f"no route for {method} {path}"})

    # -- handlers -----------------------------------------------------------

    def _create_collection(self, body: dict) -> RestResponse:
        name = body["name"]
        vector_fields = {
            f["name"]: (int(f["dim"]), f.get("metric", "l2"))
            for f in body["vector_fields"]
        }
        categoricals = []
        for entry in body.get("categorical_fields", ()):
            if isinstance(entry, str):
                categoricals.append(entry)
            else:
                categoricals.append((entry["name"], entry.get("index_kind", "auto")))
        self.client.create_collection(
            name, vector_fields, body.get("attribute_fields", ()),
            categorical_fields=categoricals,
        )
        return RestResponse(201, {"name": name})

    def _list_collections(self, body: dict) -> RestResponse:
        return RestResponse(200, {"collections": self.client.list_collections()})

    def _describe(self, body: dict, name: str) -> RestResponse:
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        return RestResponse(200, self.client.describe_collection(name))

    def _drop(self, body: dict, name: str) -> RestResponse:
        self.client.drop_collection(name)
        return RestResponse(200, {"dropped": name})

    def _insert(self, body: dict, name: str) -> RestResponse:
        data = {key: np.asarray(value) for key, value in body["data"].items()}
        ids = self.client.insert(name, data)
        return RestResponse(201, {"ids": ids.tolist()})

    def _delete(self, body: dict, name: str) -> RestResponse:
        self.client.delete(name, body["ids"])
        return RestResponse(200, {"deleted": len(body["ids"])})

    @staticmethod
    def _parse_filter(filter_spec):
        if filter_spec is None:
            return None
        if "op" in filter_spec:
            # categorical: {"attribute": "color", "op": "in"|"==",
            #               "values": [...]} (single value for "==")
            op = filter_spec["op"]
            values = filter_spec["values"]
            if op == "==" and isinstance(values, list):
                values = values[0]
            return (filter_spec["attribute"], op, values)
        return (
            filter_spec["attribute"],
            float(filter_spec["low"]),
            float(filter_spec["high"]),
        )

    def _search(self, body: dict, name: str) -> RestResponse:
        queries = np.asarray(body["queries"], dtype=np.float32)
        filter_spec = self._parse_filter(body.get("filter"))
        hits = self.client.search(
            name, body["field"], queries, int(body.get("k", 10)),
            filter=filter_spec, **body.get("params", {}),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row] for row in hits
            ]
        })

    def _explain(self, body: dict) -> RestResponse:
        """EXPLAIN/ANALYZE: run the search, return plan + work profile."""
        name = body["collection"]
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        queries = np.asarray(body["queries"], dtype=np.float32)
        filter_spec = self._parse_filter(body.get("filter"))
        explained = self.client.search(
            name, body["field"], queries, int(body.get("k", 10)),
            filter=filter_spec, explain=True, **body.get("params", {}),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row]
                for row in explained["hits"]
            ],
            "plan": explained["plan"],
            "profile": explained["profile"],
        })

    def _multi_search(self, body: dict, name: str) -> RestResponse:
        queries = {
            f: np.asarray(v, dtype=np.float32) for f, v in body["queries"].items()
        }
        hits = self.client.multi_vector_search(
            name, queries, int(body.get("k", 10)),
            weights=body.get("weights"), method=body.get("method", "auto"),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row] for row in hits
            ]
        })

    def _index(self, body: dict, name: str) -> RestResponse:
        count = self.client.create_index(
            name, body["field"], body.get("index_type", "IVF_FLAT"),
            **body.get("params", {}),
        )
        return RestResponse(200, {"segments_indexed": count})

    def _flush(self, body: dict) -> RestResponse:
        self.client.flush(body.get("collection"))
        return RestResponse(200, {"flushed": body.get("collection", "all")})

    def _server_stats(self, body: dict) -> RestResponse:
        return RestResponse(200, self.client.server.stats())

    def _collection_stats(self, body: dict, name: str) -> RestResponse:
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        collection = self.client.server.get_collection(name)
        return RestResponse(200, collection.lsm.stats())

    # -- observability ------------------------------------------------------

    def _metrics(self, body: dict) -> RestResponse:
        """Prometheus text exposition; the body carries the rendered text."""
        return RestResponse(200, {
            "content_type": "text/plain; version=0.0.4",
            "text": get_obs().registry.render_prometheus(),
        })

    def _traces(self, body: dict) -> RestResponse:
        return RestResponse(200, {"trace_ids": get_obs().tracer.trace_ids()})

    def _trace(self, body: dict, trace_id: str) -> RestResponse:
        tree = get_obs().tracer.trace_tree(trace_id)
        if tree is None:
            return RestResponse(404, {"error": f"trace {trace_id!r} not found"})
        return RestResponse(200, tree)

    def _profiles(self, body: dict) -> RestResponse:
        return RestResponse(200, {"profile_ids": get_obs().profiler.profile_ids()})

    def _profile(self, body: dict, trace_id: str) -> RestResponse:
        profile = get_obs().profiler.get(trace_id)
        if profile is None:
            return RestResponse(404, {"error": f"profile {trace_id!r} not found"})
        return RestResponse(200, profile.to_dict())

    def _slowlog(self, body: dict) -> RestResponse:
        log = get_obs().slow_query_log
        return RestResponse(200, {
            "threshold_seconds": log.threshold_seconds,
            "observed": log.observed,
            "recorded": log.recorded,
            "entries": [entry.to_dict() for entry in log.entries()],
        })
