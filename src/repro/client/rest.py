"""RESTful-style JSON API (paper Sec. 2.1).

A transport-agnostic router: ``handle(method, path, body)`` takes and
returns JSON-compatible dicts, so any HTTP framework can mount it with
a three-line adapter.  Routes follow the Milvus REST conventions:

=======  ==================================  =============================
Method   Path                                Action
=======  ==================================  =============================
POST     /collections                        create collection
GET      /collections                        list collections
GET      /collections/{name}                 describe collection
DELETE   /collections/{name}                 drop collection
POST     /collections/{name}/entities        insert entities
DELETE   /collections/{name}/entities        delete by ids
POST     /collections/{name}/search          vector / filtered search
POST     /collections/{name}/multi_search    multi-vector search
POST     /collections/{name}/index           build index
POST     /explain                            EXPLAIN/ANALYZE one search
POST     /flush                              flush one or all collections
GET      /metrics                            Prometheus text exposition
GET      /traces                             known trace ids
GET      /traces/{trace_id}                  one query's span tree
GET      /profiles                           retained profile trace ids
GET      /profiles/{trace_id}                one query's work profile
GET      /slowlog                            slow-query ring buffer
GET      /events                             operational event journal
GET      /jobs                               background-job registry
GET      /health                             watchdog health rollup
GET      /usage                              per-collection usage accounting
GET      /usage/{name}                       one collection's usage record
=======  ==================================  =============================

The observability routes read the process-global handle from
:mod:`repro.obs`; with observability disabled ``/metrics`` returns the
placeholder comment, ``/traces`` is empty, and ``/health`` reports
``"unknown"``.

List-shaped routes (``/slowlog``, ``/traces``, ``/events``) accept a
``?limit=N`` query parameter and return the **newest** ``N`` items,
newest first; a non-integer or out-of-range limit is a ``400``.
"""

from __future__ import annotations

import os
import re
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro
from repro.client.sdk import MilvusClient
from repro.core import MilvusLite, MilvusError
from repro.exec.pool import parallel_enabled
from repro.obs import enabled as obs_enabled, get_obs
from repro.utils.retry import RetryExhaustedError, RetryPolicy

#: anchor for ``uptime_seconds`` in ``GET /stats`` — monotonic, module
#: import time (never ``time.time()``; wall clocks step).
_PROCESS_START = time.perf_counter()

#: upper bound for ``?limit=`` — keeps a hostile query from asking the
#: router to materialise unbounded history (the stores are bounded
#: anyway; this just makes the contract explicit).
_MAX_LIMIT = 100_000


@dataclass
class RestResponse:
    """Status code + JSON-compatible body."""

    status: int
    body: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestRouter:
    """Route table + handlers over one embedded server.

    A :class:`RetryPolicy` (optional) rides on the underlying SDK
    client: transient storage faults cost retries, and only an
    exhausted budget surfaces — as ``503 Service Unavailable``, the
    REST contract for "try again later".
    """

    def __init__(
        self,
        server: Optional[MilvusLite] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.client = MilvusClient(server or MilvusLite(), retry=retry)
        self._routes: List[Tuple[str, re.Pattern, object]] = [
            ("POST", re.compile(r"^/collections$"), self._create_collection),
            ("GET", re.compile(r"^/collections$"), self._list_collections),
            ("GET", re.compile(r"^/collections/(?P<name>\w+)$"), self._describe),
            ("DELETE", re.compile(r"^/collections/(?P<name>\w+)$"), self._drop),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/entities$"), self._insert),
            ("DELETE", re.compile(r"^/collections/(?P<name>\w+)/entities$"), self._delete),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/search$"), self._search),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/multi_search$"), self._multi_search),
            ("POST", re.compile(r"^/collections/(?P<name>\w+)/index$"), self._index),
            ("POST", re.compile(r"^/explain$"), self._explain),
            ("POST", re.compile(r"^/flush$"), self._flush),
            ("GET", re.compile(r"^/stats$"), self._server_stats),
            ("GET", re.compile(r"^/collections/(?P<name>\w+)/stats$"), self._collection_stats),
            ("GET", re.compile(r"^/metrics$"), self._metrics),
            ("GET", re.compile(r"^/traces$"), self._traces),
            ("GET", re.compile(r"^/traces/(?P<trace_id>\w+)$"), self._trace),
            ("GET", re.compile(r"^/profiles$"), self._profiles),
            ("GET", re.compile(r"^/profiles/(?P<trace_id>\w+)$"), self._profile),
            ("GET", re.compile(r"^/slowlog$"), self._slowlog),
            ("GET", re.compile(r"^/events$"), self._events),
            ("GET", re.compile(r"^/jobs$"), self._jobs),
            ("GET", re.compile(r"^/health$"), self._health),
            ("GET", re.compile(r"^/usage$"), self._usage),
            ("GET", re.compile(r"^/usage/(?P<name>\w+)$"), self._usage_one),
        ]

    def handle(self, method: str, path: str, body: Optional[dict] = None) -> RestResponse:
        """Dispatch one request; errors map to 4xx with a message body.

        ``path`` may carry a query string (``/events?limit=10``); it is
        split off and parsed here so every handler sees a plain path
        plus a flat ``{key: last value}`` dict.  Every request runs
        inside a ``rest.request`` span and lands in
        ``rest_requests_total{method,status}`` / ``rest_request_seconds``.
        """
        path, _, raw_query = path.partition("?")
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(
                raw_query, keep_blank_values=True
            ).items()
        }
        obs = get_obs()
        with obs.tracer.span("rest.request", method=method.upper(), path=path):
            started = time.perf_counter()
            response = self._dispatch(method, path, body or {}, query)
            elapsed = time.perf_counter() - started
        obs.registry.counter(
            "rest_requests_total", method=method.upper(), status=response.status
        ).inc()
        obs.registry.histogram("rest_request_seconds").observe(elapsed)
        return response

    def _dispatch(
        self, method: str, path: str, body: dict, query: Dict[str, str]
    ) -> RestResponse:
        for route_method, pattern, handler in self._routes:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match:
                try:
                    return handler(body, query, **match.groupdict())
                except RetryExhaustedError as exc:
                    return RestResponse(
                        503,
                        {"error": str(exc), "attempts": exc.attempts,
                         "retryable": True},
                    )
                except MilvusError as exc:
                    return RestResponse(400, {"error": str(exc)})
                except KeyError as exc:
                    return RestResponse(400, {"error": f"missing field: {exc}"})
                except (ValueError, TypeError) as exc:
                    return RestResponse(400, {"error": str(exc)})
        return RestResponse(404, {"error": f"no route for {method} {path}"})

    # -- handlers -----------------------------------------------------------

    def _create_collection(self, body: dict, query: Dict[str, str]) -> RestResponse:
        name = body["name"]
        vector_fields = {
            f["name"]: (int(f["dim"]), f.get("metric", "l2"))
            for f in body["vector_fields"]
        }
        categoricals = []
        for entry in body.get("categorical_fields", ()):
            if isinstance(entry, str):
                categoricals.append(entry)
            else:
                categoricals.append((entry["name"], entry.get("index_kind", "auto")))
        self.client.create_collection(
            name, vector_fields, body.get("attribute_fields", ()),
            categorical_fields=categoricals,
        )
        return RestResponse(201, {"name": name})

    def _list_collections(self, body: dict, query: Dict[str, str]) -> RestResponse:
        return RestResponse(200, {"collections": self.client.list_collections()})

    def _describe(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        return RestResponse(200, self.client.describe_collection(name))

    def _drop(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        self.client.drop_collection(name)
        return RestResponse(200, {"dropped": name})

    def _insert(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        data = {key: np.asarray(value) for key, value in body["data"].items()}
        ids = self.client.insert(name, data)
        return RestResponse(201, {"ids": ids.tolist()})

    def _delete(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        self.client.delete(name, body["ids"])
        return RestResponse(200, {"deleted": len(body["ids"])})

    @staticmethod
    def _parse_filter(filter_spec):
        if filter_spec is None:
            return None
        if "op" in filter_spec:
            # categorical: {"attribute": "color", "op": "in"|"==",
            #               "values": [...]} (single value for "==")
            op = filter_spec["op"]
            values = filter_spec["values"]
            if op == "==" and isinstance(values, list):
                values = values[0]
            return (filter_spec["attribute"], op, values)
        return (
            filter_spec["attribute"],
            float(filter_spec["low"]),
            float(filter_spec["high"]),
        )

    def _search(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        queries = np.asarray(body["queries"], dtype=np.float32)
        filter_spec = self._parse_filter(body.get("filter"))
        hits = self.client.search(
            name, body["field"], queries, int(body.get("k", 10)),
            filter=filter_spec, **body.get("params", {}),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row] for row in hits
            ]
        })

    def _explain(self, body: dict, query: Dict[str, str]) -> RestResponse:
        """EXPLAIN/ANALYZE: run the search, return plan + work profile."""
        name = body["collection"]
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        queries = np.asarray(body["queries"], dtype=np.float32)
        filter_spec = self._parse_filter(body.get("filter"))
        explained = self.client.search(
            name, body["field"], queries, int(body.get("k", 10)),
            filter=filter_spec, explain=True, **body.get("params", {}),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row]
                for row in explained["hits"]
            ],
            "plan": explained["plan"],
            "profile": explained["profile"],
        })

    def _multi_search(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        queries = {
            f: np.asarray(v, dtype=np.float32) for f, v in body["queries"].items()
        }
        hits = self.client.multi_vector_search(
            name, queries, int(body.get("k", 10)),
            weights=body.get("weights"), method=body.get("method", "auto"),
        )
        return RestResponse(200, {
            "hits": [
                [{"id": int(i), "score": float(s)} for i, s in row] for row in hits
            ]
        })

    def _index(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        count = self.client.create_index(
            name, body["field"], body.get("index_type", "IVF_FLAT"),
            **body.get("params", {}),
        )
        return RestResponse(200, {"segments_indexed": count})

    def _flush(self, body: dict, query: Dict[str, str]) -> RestResponse:
        self.client.flush(body.get("collection"))
        return RestResponse(200, {"flushed": body.get("collection", "all")})

    def _server_stats(self, body: dict, query: Dict[str, str]) -> RestResponse:
        stats = self.client.server.stats()
        obs = get_obs()
        uptime = time.perf_counter() - _PROCESS_START
        obs.registry.gauge("process_uptime_seconds").set(uptime)
        stats["uptime_seconds"] = uptime
        stats["version"] = repro.__version__
        stats["flags"] = {
            "observability": obs_enabled(),
            "sanitize": os.environ.get("REPRO_SANITIZE") == "1",
            "parallel": parallel_enabled(),
            "background_flush": os.environ.get("REPRO_BG_FLUSH") == "1",
        }
        return RestResponse(200, stats)

    def _collection_stats(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        if not self.client.has_collection(name):
            return RestResponse(404, {"error": f"collection {name!r} not found"})
        collection = self.client.server.get_collection(name)
        return RestResponse(200, collection.lsm.stats())

    # -- observability ------------------------------------------------------

    @staticmethod
    def _parse_limit(query: Dict[str, str]) -> Optional[int]:
        """Shared bounded-int parser for ``?limit=``.

        Returns ``None`` when absent (meaning "everything").  Raises
        :class:`ValueError` — which ``_dispatch`` maps to ``400`` — on
        a non-integer, negative, or absurdly large value.
        """
        raw = query.get("limit")
        if raw is None:
            return None
        try:
            limit = int(raw)
        except ValueError:
            raise ValueError(f"limit must be an integer, got {raw!r}") from None
        if not 0 <= limit <= _MAX_LIMIT:
            raise ValueError(f"limit must be in [0, {_MAX_LIMIT}], got {limit}")
        return limit

    def _metrics(self, body: dict, query: Dict[str, str]) -> RestResponse:
        """Prometheus text exposition; the body carries the rendered text."""
        return RestResponse(200, {
            "content_type": "text/plain; version=0.0.4",
            "text": get_obs().registry.render_prometheus(),
        })

    def _traces(self, body: dict, query: Dict[str, str]) -> RestResponse:
        limit = self._parse_limit(query)
        trace_ids = list(reversed(get_obs().tracer.trace_ids()))
        if limit is not None:
            trace_ids = trace_ids[:limit]
        return RestResponse(200, {"trace_ids": trace_ids})

    def _trace(self, body: dict, query: Dict[str, str], trace_id: str) -> RestResponse:
        tree = get_obs().tracer.trace_tree(trace_id)
        if tree is None:
            return RestResponse(404, {"error": f"trace {trace_id!r} not found"})
        return RestResponse(200, tree)

    def _profiles(self, body: dict, query: Dict[str, str]) -> RestResponse:
        return RestResponse(200, {"profile_ids": get_obs().profiler.profile_ids()})

    def _profile(self, body: dict, query: Dict[str, str], trace_id: str) -> RestResponse:
        profile = get_obs().profiler.get(trace_id)
        if profile is None:
            return RestResponse(404, {"error": f"profile {trace_id!r} not found"})
        return RestResponse(200, profile.to_dict())

    def _slowlog(self, body: dict, query: Dict[str, str]) -> RestResponse:
        limit = self._parse_limit(query)
        log = get_obs().slow_query_log
        entries = [entry.to_dict() for entry in reversed(log.entries())]
        if limit is not None:
            entries = entries[:limit]
        return RestResponse(200, {
            "threshold_seconds": log.threshold_seconds,
            "observed": log.observed,
            "recorded": log.recorded,
            "entries": entries,
        })

    # -- operational health (INTERNALS §19) ---------------------------------

    def _events(self, body: dict, query: Dict[str, str]) -> RestResponse:
        limit = self._parse_limit(query)
        journal = get_obs().events
        return RestResponse(200, {
            "last_seq": journal.last_seq(),
            "events": [
                e.to_dict() for e in journal.events(limit=limit, newest_first=True)
            ],
        })

    def _jobs(self, body: dict, query: Dict[str, str]) -> RestResponse:
        return RestResponse(200, get_obs().jobs.snapshot())

    def _health(self, body: dict, query: Dict[str, str]) -> RestResponse:
        """Watchdog rollup; ``unhealthy`` maps to 503 so an external
        load-balancer probe can act on the status code alone."""
        report = get_obs().health.report()
        status = 503 if report.get("status") == "unhealthy" else 200
        return RestResponse(status, report)

    def _usage(self, body: dict, query: Dict[str, str]) -> RestResponse:
        return RestResponse(200, {"collections": get_obs().usage.snapshot()})

    def _usage_one(self, body: dict, query: Dict[str, str], name: str) -> RestResponse:
        record = get_obs().usage.collection(name)
        if record is None:
            return RestResponse(404, {"error": f"no usage recorded for {name!r}"})
        return RestResponse(200, record)
