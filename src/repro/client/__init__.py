"""Application interfaces (paper Sec. 2.1): SDK and RESTful APIs.

"Milvus provides easy-to-use SDK interfaces that can be directly
called in applications ... Milvus also supports RESTful APIs for web
applications."  The SDK mirrors the pymilvus verb set over an embedded
server; the REST layer is a transport-agnostic JSON request router
(dict in, dict out) that a web framework would mount directly.
"""

from repro.client.sdk import ClusterClient, MilvusClient, connect
from repro.client.rest import RestRouter, RestResponse

__all__ = [
    "ClusterClient", "MilvusClient", "connect", "RestRouter", "RestResponse",
]
