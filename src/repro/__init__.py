"""repro — a pure-Python reproduction of Milvus (SIGMOD 2021).

A purpose-built vector data management system: pluggable vector
indexes, LSM-based dynamic data management with snapshot isolation,
attribute filtering, multi-vector query processing, a simulated
heterogeneous (CPU/GPU) compute layer, and a simulated shared-storage
distributed deployment.

Quickstart::

    import numpy as np
    from repro import MilvusLite, CollectionSchema, VectorField

    server = MilvusLite()
    schema = CollectionSchema(
        name="demo",
        vector_fields=[VectorField("embedding", dim=64, metric="l2")],
    )
    coll = server.create_collection(schema)
    rng = np.random.default_rng(42)  # seeded: runs are reproducible
    coll.insert({"embedding": rng.random((1000, 64), dtype="float32")})
    coll.flush()
    result = coll.search("embedding", rng.random(64, dtype="float32"), k=10)
"""

__version__ = "1.0.0"

from repro.metrics import get_metric, available_metrics
from repro.index import (
    VectorIndex,
    SearchResult,
    FlatIndex,
    IVFFlatIndex,
    IVFSQ8Index,
    IVFPQIndex,
    HNSWIndex,
    NSGIndex,
    AnnoyIndex,
    BinaryFlatIndex,
    KMeans,
    create_index,
    register_index,
    available_index_types,
)
from repro.core import (
    MilvusLite,
    ServerConfig,
    Collection,
    CollectionSchema,
    VectorField,
    AttributeField,
    CategoricalField,
    MilvusError,
)
from repro.storage import LSMConfig
from repro.client import MilvusClient, RestRouter, connect

__all__ = [
    "__version__",
    # metrics
    "get_metric",
    "available_metrics",
    # indexes
    "VectorIndex",
    "SearchResult",
    "FlatIndex",
    "IVFFlatIndex",
    "IVFSQ8Index",
    "IVFPQIndex",
    "HNSWIndex",
    "NSGIndex",
    "AnnoyIndex",
    "BinaryFlatIndex",
    "KMeans",
    "create_index",
    "register_index",
    "available_index_types",
    # core system
    "MilvusLite",
    "ServerConfig",
    "Collection",
    "CollectionSchema",
    "VectorField",
    "AttributeField",
    "CategoricalField",
    "MilvusError",
    "LSMConfig",
    # clients
    "MilvusClient",
    "RestRouter",
    "connect",
]
