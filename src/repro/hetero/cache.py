"""Cache-aware batch query processing (paper Sec. 3.2.1).

Two deliverables:

* :func:`query_block_size` — Equation (1): the number of queries whose
  vectors *and* per-thread heaps fit in L3 together.
* :class:`CacheAwareSearcher` — a real, runnable implementation of both
  designs: the *original* (Faiss-style: one query at a time streams the
  whole dataset) and the *cache-aware* design (threads own data ranges,
  query blocks stay resident, one heap per (thread, query), merged at
  the end).  Both produce identical exact top-k; the cache-aware path
  is also genuinely faster in numpy because the blocked form maps to
  GEMM.
* :class:`CacheTrafficModel` — the analytical memory-traffic model that
  regenerates Fig. 11 on the paper's two CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hetero.hardware import CPUSpec
from repro.metrics import Metric, get_metric
from repro.utils import ensure_positive, merge_topk, topk_from_scores

_FLOAT = 4  # sizeof(float)
_HEAP_ENTRY = 8 + 4  # sizeof(int64) + sizeof(float)


def query_block_size(l3_bytes: int, dim: int, threads: int, k: int) -> int:
    """Equation (1): s = L3 / (d*sizeof(float) + t*k*(sizeof(int64)+sizeof(float))).

    Returns at least 1 (a degenerate cache still processes one query at
    a time, which collapses to the original design).
    """
    ensure_positive(dim, "dim")
    ensure_positive(threads, "threads")
    ensure_positive(k, "k")
    denom = dim * _FLOAT + threads * k * _HEAP_ENTRY
    return max(1, int(l3_bytes // denom))


@dataclass
class SearchStats:
    """What one batch search did, for model validation."""

    data_passes: float  # how many times the full dataset was streamed
    blocks: int


class CacheAwareSearcher:
    """Exact batch top-k with the original and cache-aware designs."""

    def __init__(self, data: np.ndarray, metric="l2", cpu: Optional[CPUSpec] = None):
        self.data = np.asarray(data, dtype=np.float32)
        self.metric: Metric = get_metric(metric)
        self.cpu = cpu
        self.last_stats: Optional[SearchStats] = None

    # -- original (Faiss-style) design ---------------------------------------

    def search_original(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """One query at a time; the dataset streams through cache per query.

        "Each task compares q_i with all the n data vectors and
        maintains a k-sized heap" — so m queries stream the data m
        times.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        m = len(queries)
        ids = np.empty((m, min(k, len(self.data))), dtype=np.int64)
        scores = np.empty_like(ids, dtype=np.float64)
        for qi in range(m):
            row = self.metric.pairwise(queries[qi : qi + 1], self.data)[0]
            top_ids, top_scores = topk_from_scores(row, k, self.metric.higher_is_better)
            ids[qi, : len(top_ids)] = top_ids
            scores[qi, : len(top_scores)] = top_scores
        self.last_stats = SearchStats(data_passes=float(m), blocks=m)
        return ids, scores

    # -- cache-aware design ---------------------------------------------------

    def search_cache_aware(
        self,
        queries: np.ndarray,
        k: int,
        threads: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Blocked design: thread-partitioned data x resident query blocks.

        Each "thread" owns n/t data vectors; each query block of size s
        (Equation (1)) is compared against every thread's slice while
        the block is cache-resident, with one heap per (thread, query),
        merged per query at the end.  Exactly the paper's Figure 3.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        m, dim = queries.shape
        t = threads or (self.cpu.threads if self.cpu else 4)
        if block_size is None:
            l3 = self.cpu.l3_bytes if self.cpu else 32 * 1024 * 1024
            block_size = query_block_size(l3, dim, t, k)
        block_size = max(1, min(block_size, m))

        n = len(self.data)
        bounds = np.linspace(0, n, t + 1).astype(int)
        k_eff = min(k, n)
        ids = np.empty((m, k_eff), dtype=np.int64)
        scores = np.empty((m, k_eff), dtype=np.float64)

        blocks = 0
        for start in range(0, m, block_size):
            stop = min(start + block_size, m)
            block = queries[start:stop]
            blocks += 1
            # heaps[thread] holds (ids, scores) partials per query.
            partials = [[] for __ in range(stop - start)]
            for ti in range(t):
                lo, hi = bounds[ti], bounds[ti + 1]
                if hi <= lo:
                    continue
                chunk_scores = self.metric.pairwise(block, self.data[lo:hi])
                chunk_ids = np.arange(lo, hi, dtype=np.int64)
                for qi in range(stop - start):
                    partials[qi].append(
                        topk_from_scores(
                            chunk_scores[qi], k, self.metric.higher_is_better,
                            ids=chunk_ids,
                        )
                    )
            for qi in range(stop - start):
                top_ids, top_scores = merge_topk(
                    partials[qi], k, self.metric.higher_is_better
                )
                ids[start + qi, : len(top_ids)] = top_ids
                scores[start + qi, : len(top_scores)] = top_scores
        self.last_stats = SearchStats(data_passes=m / block_size, blocks=blocks)
        return ids, scores


@dataclass
class CacheTrafficModel:
    """Analytical time model regenerating Fig. 11.

    The distance kernel costs ~3 FLOPs per (query, data) float pair.
    The original design streams the dataset once per query, so it is
    memory-bound once data outgrows L3; the cache-aware design streams
    it once per *query block* and is compute-bound.  Modeled time is
    ``max(compute, traffic / bandwidth)`` plus a per-query overhead.
    """

    cpu: CPUSpec
    flops_per_pair: float = 3.0
    per_query_overhead_s: float = 2e-6

    def _compute_seconds(self, m: int, n: int, dim: int) -> float:
        flops = self.flops_per_pair * m * n * dim
        return flops / (self.cpu.scan_gflops * 1e9)

    def _traffic_bytes(self, m: int, n: int, dim: int, passes: float) -> float:
        data_bytes = n * dim * _FLOAT
        resident = min(1.0, self.cpu.l3_bytes / max(data_bytes, 1))
        # The fraction of the data already cache-resident never refetches.
        return passes * data_bytes * (1.0 - resident)

    def time_original(self, m: int, n: int, dim: int, k: int) -> float:
        """Modeled seconds for the Faiss-style per-query design."""
        compute = self._compute_seconds(m, n, dim)
        traffic = self._traffic_bytes(m, n, dim, passes=float(m))
        return max(compute, traffic / self.cpu.mem_bandwidth) + m * self.per_query_overhead_s

    def time_cache_aware(self, m: int, n: int, dim: int, k: int) -> float:
        """Modeled seconds for the blocked design with Equation (1)."""
        s = query_block_size(self.cpu.l3_bytes, dim, self.cpu.threads, k)
        passes = m / min(s, max(m, 1))
        compute = self._compute_seconds(m, n, dim)
        traffic = self._traffic_bytes(m, n, dim, passes=passes)
        return max(compute, traffic / self.cpu.mem_bandwidth) + m * self.per_query_overhead_s

    def speedup(self, m: int, n: int, dim: int, k: int) -> float:
        return self.time_original(m, n, dim, k) / self.time_cache_aware(m, n, dim, k)
