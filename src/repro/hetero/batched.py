"""Bucket-major batched IVF execution — the cache-aware design applied
to quantization indexes (paper Sec. 3.2.1).

Per-query IVF search streams each probed bucket once *per query*.  The
batched executor inverts the loop: for every bucket, gather all the
queries probing it and scan the bucket once for the whole sub-batch —
one GEMM per (bucket, query-group), maximal data reuse.  This is the
fine-grained "threads own data, query blocks stay resident" idea in
inverted-file form, and it is genuinely faster in this substrate
because blocking maps onto BLAS.

The bucket-major loop now lives *inside* the IVF family
(:meth:`repro.index.ivf_common.IVFIndexBase._search_batched`), where it
composes with the per-query-batch scan contexts (ADC tables built once,
decode-free SQ8 terms) and the blocked fast-scan kernels.  This wrapper
delegates and is kept for API compatibility with the heterogeneous
scheduler and the figure-12 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult
from repro.index.ivf_common import IVFIndexBase


class BatchedIVFSearcher:
    """Batch executor over any trained/populated IVF index."""

    def __init__(self, index: IVFIndexBase):
        if not isinstance(index, IVFIndexBase):
            raise TypeError("BatchedIVFSearcher requires an IVF-family index")
        self.index = index

    def search(self, queries: np.ndarray, k: int, nprobe: int = 8) -> SearchResult:
        """Same results as per-query IVF search, bucket-major execution."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.index.ntotal == 0:
            return SearchResult.empty(len(queries), k, self.index.metric)
        return self.index.search(queries, k, nprobe=nprobe)
