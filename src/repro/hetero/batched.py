"""Bucket-major batched IVF execution — the cache-aware design applied
to quantization indexes (paper Sec. 3.2.1).

Per-query IVF search streams each probed bucket once *per query*.  The
batched executor inverts the loop: for every bucket, gather all the
queries probing it and scan the bucket once for the whole sub-batch —
one GEMM per (bucket, query-group), maximal data reuse.  This is the
fine-grained "threads own data, query blocks stay resident" idea in
inverted-file form, and it is genuinely faster in this substrate
because blocking maps onto BLAS.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.index.base import SearchResult
from repro.index.ivf_common import IVFIndexBase
from repro.utils import merge_topk, topk_from_scores


class BatchedIVFSearcher:
    """Batch executor over any trained/populated IVF index."""

    def __init__(self, index: IVFIndexBase):
        if not isinstance(index, IVFIndexBase):
            raise TypeError("BatchedIVFSearcher requires an IVF-family index")
        self.index = index

    def search(self, queries: np.ndarray, k: int, nprobe: int = 8) -> SearchResult:
        """Same results as per-query IVF search, bucket-major execution."""
        index = self.index
        metric = index.metric
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        m = len(queries)
        if index.ntotal == 0:
            return SearchResult.empty(m, k, metric)

        bucket_ids = index.select_buckets(queries, nprobe)  # (m, nprobe)
        # Invert to bucket -> probing query indexes.
        by_bucket: Dict[int, List[int]] = {}
        for qi in range(m):
            for b in bucket_ids[qi]:
                by_bucket.setdefault(int(b), []).append(qi)

        partials: List[List] = [[] for __ in range(m)]
        for bucket, qidx in by_bucket.items():
            ids, codes = index.lists.get(bucket)
            if len(ids) == 0:
                continue
            sub = queries[np.array(qidx)]
            scores = index._scan_list(sub, codes, bucket)
            for row, qi in enumerate(qidx):
                partials[qi].append(
                    topk_from_scores(scores[row], k, metric.higher_is_better, ids=ids)
                )

        result = SearchResult.empty(m, k, metric)
        for qi in range(m):
            top_ids, top_scores = merge_topk(partials[qi], k, metric.higher_is_better)
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        return result
