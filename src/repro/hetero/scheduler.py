"""Segment-based multi-GPU scheduling (paper Sec. 3.3).

"Milvus introduces a segment-based scheduling that assigns
segment-based search tasks to the available GPU devices.  Each segment
can only be served by a single GPU device ... if there is a new GPU
device installed, Milvus can immediately discover it and assign the
next available search task to it."

The scheduler is greedy least-finish-time over modeled per-task costs;
devices can be added (or removed) between dispatches, modelling the
elastic cloud setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hetero.gpu import GPUDevice
from repro.obs import get_obs
from repro.utils import EwmaCalibrator


@dataclass(frozen=True)
class SearchTask:
    """One segment's search workload."""

    segment_id: int
    nbytes: int  # data to transfer if not resident
    m: int  # batch size
    n: int  # rows in the segment
    dim: int


@dataclass
class Assignment:
    task: SearchTask
    device_id: int
    start_seconds: float
    end_seconds: float


class SegmentScheduler:
    """Assign segment search tasks to GPU devices, one device per segment."""

    def __init__(
        self,
        devices: Optional[Sequence[GPUDevice]] = None,
        calibrator: Optional[EwmaCalibrator] = None,
    ):
        self._devices: Dict[int, GPUDevice] = {}
        self._busy_until: Dict[int, float] = {}
        self.assignments: List[Assignment] = []
        #: optional per-device cost calibration: greedy placement then
        #: compares *corrected* finish times, so a device whose modeled
        #: speed is optimistic stops winning every dispatch.
        self.calibrator = calibrator
        for device in devices or ():
            self.add_device(device)

    # -- elastic device management ----------------------------------------

    def add_device(self, device: GPUDevice) -> None:
        """Runtime device discovery — no recompilation needed (Sec. 3.3)."""
        if device.device_id in self._devices:
            raise ValueError(f"device {device.device_id} already registered")
        self._devices[device.device_id] = device
        self._busy_until[device.device_id] = 0.0

    def remove_device(self, device_id: int) -> None:
        self._devices.pop(device_id)
        self._busy_until.pop(device_id)

    @property
    def num_devices(self) -> int:
        return len(self._devices)

    def devices(self) -> Dict[int, GPUDevice]:
        """Registered devices (read-only copy for planners/EXPLAIN)."""
        return dict(self._devices)

    # -- scheduling ----------------------------------------------------------

    def task_cost(self, device: GPUDevice, task: SearchTask) -> float:
        """Modeled seconds: transfer (if segment not resident) + kernel.

        With a calibrator attached the raw model is multiplied by the
        device's learned measured/modeled ratio (EWMA over
        :meth:`observe_execution` feedback).
        """
        transfer = 0.0
        if not device.is_resident(task.segment_id):
            transfer = device.transfer_seconds(task.nbytes, batched=True)
        raw = transfer + device.kernel_seconds(task.m, task.n, task.dim)
        if self.calibrator is None:
            return raw
        return self.calibrator.correct(f"device:{device.device_id}", raw)

    def observe_execution(
        self, assignment: Assignment, measured_seconds: float
    ) -> None:
        """Feed one task's measured wall time back into the device EWMA."""
        if self.calibrator is None:
            return
        modeled = assignment.end_seconds - assignment.start_seconds
        self.calibrator.observe(
            f"device:{assignment.device_id}", modeled, measured_seconds
        )

    def dispatch(self, task: SearchTask) -> Assignment:
        """Assign one task to the device that finishes it earliest."""
        if not self._devices:
            raise RuntimeError("no GPU devices registered")
        best: Optional[Tuple[float, float, int]] = None
        for dev_id, device in self._devices.items():
            start = self._busy_until[dev_id]
            end = start + self.task_cost(device, task)
            if best is None or end < best[1]:
                best = (start, end, dev_id)
        start, end, dev_id = best
        device = self._devices[dev_id]
        if not device.is_resident(task.segment_id):
            if device.fits(task.nbytes):
                device.load(task.segment_id, task.nbytes, batched=True)
        self._busy_until[dev_id] = end
        assignment = Assignment(task, dev_id, start, end)
        self.assignments.append(assignment)
        get_obs().registry.counter(
            "hetero_dispatch_total", device=f"gpu-{dev_id}"
        ).inc()
        return assignment

    def dispatch_all(self, tasks: Sequence[SearchTask]) -> List[Assignment]:
        return [self.dispatch(task) for task in tasks]

    def makespan(self) -> float:
        """Completion time of the last scheduled task."""
        return max(self._busy_until.values(), default=0.0)

    def device_loads(self) -> Dict[int, float]:
        return dict(self._busy_until)

    def reset_clock(self) -> None:
        for dev_id in self._busy_until:
            self._busy_until[dev_id] = 0.0
        self.assignments.clear()
