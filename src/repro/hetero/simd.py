"""SIMD-aware kernels with runtime dispatch (paper Sec. 3.2.2).

The paper's contribution is twofold: AVX512 similarity kernels, and
*automatic* SIMD selection — one binary, four kernel builds (SSE, AVX,
AVX2, AVX512), with the right function pointer hooked at runtime from
the CPU flags (Faiss required a compile-time ``-msse4``-style choice).

Here each "kernel build" is a distinct callable registered per ISA.
All four compute identical results (numpy does the arithmetic); they
differ in the *modeled* cycle cost derived from lane width, which is
what regenerates Fig. 12's AVX512 ≈ 1.5x AVX2.  The dispatcher is
real: it inspects the advertised CPU flags and links the best kernel,
exactly the hooking mechanism the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hetero.hardware import CPUSpec, SIMDLevel
from repro.metrics.dense import inner_product_pairwise, l2_squared_pairwise

#: relative sustained throughput vs the SSE build.  AVX2 gains FMA over
#: AVX; AVX512 doubles lanes but downclocks, landing at ~1.5x AVX2 —
#: the ratio the paper measures in Fig. 12.
_THROUGHPUT_FACTOR = {
    SIMDLevel.SSE: 1.0,
    SIMDLevel.AVX: 1.8,
    SIMDLevel.AVX2: 2.6,
    SIMDLevel.AVX512: 3.9,
}


@dataclass(frozen=True)
class SimdKernel:
    """One compiled-per-ISA similarity kernel."""

    level: SIMDLevel
    op: str  # "l2" or "ip"
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    @property
    def throughput_factor(self) -> float:
        return _THROUGHPUT_FACTOR[self.level]

    def __call__(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return self.fn(queries, data)

    def modeled_seconds(
        self, m: int, n: int, dim: int, base_gflops: float = 30.0
    ) -> float:
        """Modeled kernel time: 3 FLOPs/pair over ISA-scaled throughput.

        ``base_gflops`` is the sustained SSE-build rate; each wider ISA
        multiplies it by its throughput factor.
        """
        flops = 3.0 * m * n * dim
        return flops / (base_gflops * 1e9 * self.throughput_factor)


def _make_kernel(level: SIMDLevel, op: str) -> SimdKernel:
    impl = l2_squared_pairwise if op == "l2" else inner_product_pairwise

    def fn(queries: np.ndarray, data: np.ndarray, _impl=impl, _level=level) -> np.ndarray:
        # Every ISA build computes the same exact result; lane width is
        # a cost-model property in this reproduction.
        return _impl(queries, data)

    fn.__name__ = f"{op}_{level.name.lower()}"
    return SimdKernel(level, op, fn)


def simd_kernel_registry() -> Dict[Tuple[str, SIMDLevel], SimdKernel]:
    """The four-builds-per-function registry the paper describes."""
    registry: Dict[Tuple[str, SIMDLevel], SimdKernel] = {}
    for op in ("l2", "ip"):
        for level in SIMDLevel:
            registry[(op, level)] = _make_kernel(level, op)
    return registry


class SimdDispatcher:
    """Runtime kernel selection from CPU flags (the 'hooking' step).

    "During runtime, Milvus can automatically choose the suitable SIMD
    instructions based on the current CPU flags and then link the right
    function pointers using hooking."
    """

    def __init__(self, cpu_flags: Sequence[str], registry: Optional[dict] = None):
        self.cpu_flags = tuple(flag.lower() for flag in cpu_flags)
        self._registry = registry or simd_kernel_registry()
        self.selected_level = self._detect_level()
        # Link the function pointers once, at "startup".
        self._linked: Dict[str, SimdKernel] = {
            op: self._registry[(op, self.selected_level)] for op in ("l2", "ip")
        }

    @classmethod
    def for_cpu(cls, cpu: CPUSpec) -> "SimdDispatcher":
        return cls(cpu.simd_flags)

    def _detect_level(self) -> SIMDLevel:
        best = None
        for level in SIMDLevel:
            if level.name.lower() in self.cpu_flags:
                best = level
        if best is None:
            raise ValueError(
                f"no supported SIMD flag found in {self.cpu_flags!r} "
                "(need one of sse/avx/avx2/avx512)"
            )
        return best

    def kernel(self, op: str) -> SimdKernel:
        """The linked kernel for ``op`` ("l2" or "ip")."""
        try:
            return self._linked[op]
        except KeyError:
            raise KeyError(f"unknown op {op!r}; have {sorted(self._linked)}") from None

    def pairwise(self, op: str, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return self.kernel(op)(queries, data)
