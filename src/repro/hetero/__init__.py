"""Heterogeneous computing layer (paper Sec. 3).

A pure-Python build cannot run real AVX512 kernels or CUDA, so this
package pairs *real algorithmic implementations* (the blocked
cache-aware batch search, the multi-round large-k GPU kernel logic,
runtime SIMD dispatch) with an *analytical hardware model* whose
constants are calibrated against the paper's own measurements
(Sec. 7.4: cache-aware gain 1.5x-2.7x, AVX512 ~1.5x over AVX2,
effective PCIe 1-2 GB/s).  Benchmarks report modelled times where the
paper reports wall-clock on real silicon; tests verify both the real
outputs (exactness of blocked search, k>1024 kernel) and the model's
qualitative shape.
"""

from repro.hetero.hardware import (
    CPUSpec,
    GPUSpec,
    SIMDLevel,
    XEON_PLATINUM_8269,
    CORE_I7_8700,
    TESLA_T4,
)
from repro.hetero.cache import (
    query_block_size,
    CacheAwareSearcher,
    CacheTrafficModel,
)
from repro.hetero.simd import SimdDispatcher, SimdKernel, simd_kernel_registry
from repro.hetero.gpu import GPUDevice, gpu_topk_large_k
from repro.hetero.sq8h import SQ8HExecutor, SQ8HConfig, ExecutionPlan
from repro.hetero.scheduler import SegmentScheduler, SearchTask
from repro.hetero.engine import GPUSearchEngine, GPUSearchOutcome
from repro.hetero.fpga import FPGAPQExecutor, FPGASpec
from repro.hetero.batched import BatchedIVFSearcher

__all__ = [
    "GPUSearchEngine",
    "GPUSearchOutcome",
    "FPGAPQExecutor",
    "FPGASpec",
    "BatchedIVFSearcher",
    "CPUSpec",
    "GPUSpec",
    "SIMDLevel",
    "XEON_PLATINUM_8269",
    "CORE_I7_8700",
    "TESLA_T4",
    "query_block_size",
    "CacheAwareSearcher",
    "CacheTrafficModel",
    "SimdDispatcher",
    "SimdKernel",
    "simd_kernel_registry",
    "GPUDevice",
    "gpu_topk_large_k",
    "SQ8HExecutor",
    "SQ8HConfig",
    "ExecutionPlan",
    "SegmentScheduler",
    "SearchTask",
]
