"""Hardware specifications for the analytical performance model.

The two CPUs are the ones in Fig. 11 (Intel Core i7-8700, 12 MB L3;
Xeon Platinum 8269, 35.75 MB L3) and the GPU is the Tesla T4 of
Sec. 7.1.  ``scan_gflops`` (sustained in-cache distance throughput)
and ``mem_bandwidth`` are *effective* values calibrated so the model
reproduces the paper's measured cache-aware speedups (2.7x on the i7,
1.5x on the Xeon) — real peak numbers overstate what a distance scan
sustains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class SIMDLevel(enum.IntEnum):
    """Supported SIMD instruction sets, in capability order."""

    SSE = 1
    AVX = 2
    AVX2 = 3
    AVX512 = 4

    @property
    def float_lanes(self) -> int:
        """Parallel float32 lanes per instruction."""
        return {self.SSE: 4, self.AVX: 8, self.AVX2: 8, self.AVX512: 16}[self]


@dataclass(frozen=True)
class CPUSpec:
    """One CPU's model parameters.

    Attributes:
        name: human-readable identifier.
        l3_bytes: last-level cache size (drives Equation (1)).
        threads: hardware threads the engine uses.
        simd: highest SIMD level the CPU advertises.
        scan_gflops: sustained distance-compute throughput when the
            working set is cache-resident (GFLOP/s, all threads).
        mem_bandwidth: sustained streaming bandwidth (bytes/s).
    """

    name: str
    l3_bytes: int
    threads: int
    simd: SIMDLevel
    scan_gflops: float
    mem_bandwidth: float

    @property
    def simd_flags(self) -> Tuple[str, ...]:
        """CPU flag strings, as runtime dispatch would read from cpuid."""
        order = [SIMDLevel.SSE, SIMDLevel.AVX, SIMDLevel.AVX2, SIMDLevel.AVX512]
        return tuple(level.name.lower() for level in order if level <= self.simd)


@dataclass(frozen=True)
class GPUSpec:
    """One GPU's model parameters.

    ``pcie_effective_single`` is the paper's measured 1-2 GB/s when
    Faiss copies bucket-by-bucket; ``pcie_effective_batched`` is what
    Milvus's multi-bucket copying achieves out of the 15.75 GB/s
    PCIe 3.0 x16 peak.
    """

    name: str
    memory_bytes: int
    compute_gflops: float
    pcie_peak: float
    pcie_effective_single: float
    pcie_effective_batched: float
    kernel_launch_overhead_s: float = 20e-6
    max_shared_memory_k: int = 1024


#: Fig. 11(b)/Sec. 7.1 default CPU: Xeon Platinum 8269 Cascade 2.5 GHz,
#: 16 vCPUs, 35.75 MB L3, AVX512.
XEON_PLATINUM_8269 = CPUSpec(
    name="Xeon Platinum 8269",
    l3_bytes=int(35.75 * 1024 * 1024),
    threads=16,
    simd=SIMDLevel.AVX512,
    scan_gflops=120.0,
    mem_bandwidth=107e9,
)

#: Fig. 11(a) CPU: Intel Core i7-8700 3.2 GHz, 12 MB L3, AVX2.
CORE_I7_8700 = CPUSpec(
    name="Core i7-8700",
    l3_bytes=12 * 1024 * 1024,
    threads=6,
    simd=SIMDLevel.AVX2,
    scan_gflops=80.0,
    mem_bandwidth=40e9,
)

#: Sec. 7.1 GPU: NVIDIA Tesla T4, 16 GB, PCIe 3.0 x16.
TESLA_T4 = GPUSpec(
    name="Tesla T4",
    memory_bytes=16 * 1024 ** 3,
    compute_gflops=4000.0,
    pcie_peak=15.75e9,
    pcie_effective_single=1.5e9,
    pcie_effective_batched=12e9,
)
