"""SQ8H: the CPU/GPU hybrid index (paper Sec. 3.4, Algorithm 1).

The scenario: GPU memory cannot hold the data.  SQ8H decides per batch:

* batch >= threshold — run everything on GPU, streaming buckets over
  PCIe with *multi-bucket* copies (Milvus's fix for Faiss's 1-2 GB/s
  effective bandwidth);
* batch < threshold — hybrid: step 1 (find nprobe buckets) on GPU,
  where only the K centroids live (always resident, high
  compute-to-I/O), step 2 (scan buckets) on CPU, so no data segment
  ever crosses PCIe.

The executor can run *for real* over an :class:`IVFSQ8Index` (results
are the index's results; the plan decides where steps notionally ran)
and, independently, produce modeled times at arbitrary scale for
Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.hetero.gpu import GPUDevice
from repro.hetero.hardware import CPUSpec, XEON_PLATINUM_8269
from repro.index.base import SearchResult
from repro.index.ivf_sq8 import IVFSQ8Index
from repro.utils import EwmaCalibrator


@dataclass
class SQ8HConfig:
    """Tunables for Algorithm 1."""

    batch_threshold: int = 1000  # the paper's "e.g., 1000"
    nprobe: int = 8
    flops_per_pair: float = 3.0
    #: CPU per-bucket scan overhead (seconds) — scattered accesses.
    cpu_bucket_overhead_s: float = 5e-6
    #: effective CPU rate for the coarse step, which the Faiss-style
    #: baseline runs per query rather than as one batched GEMM — an
    #: order of magnitude below the batched scan rate.
    cpu_coarse_gflops: float = 15.0


@dataclass(frozen=True)
class ExecutionPlan:
    """Where each step ran, with modeled timing breakdown (seconds)."""

    mode: str  # "gpu" or "hybrid"
    step1_device: str
    step2_device: str
    transfer_seconds: float
    step1_seconds: float
    step2_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.step1_seconds + self.step2_seconds


class SQ8HExecutor:
    """Algorithm 1 over one IVF_SQ8 index and one GPU device."""

    def __init__(
        self,
        index: Optional[IVFSQ8Index] = None,
        gpu: Optional[GPUDevice] = None,
        cpu: CPUSpec = XEON_PLATINUM_8269,
        config: Optional[SQ8HConfig] = None,
        calibrator: Optional[EwmaCalibrator] = None,
    ):
        self.index = index
        self.gpu = gpu or GPUDevice()
        self.cpu = cpu
        self.config = config or SQ8HConfig()
        #: when set, :meth:`model_plan` picks the mode by argmin over
        #: calibrated per-mode costs instead of the static threshold.
        self.calibrator = calibrator

    # -- real execution over the attached index ---------------------------

    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        """Algorithm 1 for real: plan + the index's actual search."""
        if self.index is None:
            raise RuntimeError("SQ8HExecutor has no attached index")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        plan = self.plan(len(queries))
        result = self.index.search(queries, k, nprobe=self.config.nprobe)
        self.last_plan = plan
        return result

    def plan(self, batch_size: int) -> ExecutionPlan:
        """Algorithm 1's branch, with modeled times from the real index."""
        if self.index is None or self.index.ntotal == 0:
            raise RuntimeError("plan() needs a populated index")
        n = self.index.ntotal
        dim = self.index.dim
        nlist = self.index.nlist
        return self.model_plan(
            batch_size, n=n, dim=dim, nlist=nlist,
        )

    # -- pure model (paper-scale what-ifs, Fig. 13) -----------------------------

    def model_plan(self, m: int, n: int, dim: int, nlist: int) -> ExecutionPlan:
        """Algorithm 1 as a cost model (SQ8: 1 byte per dimension).

        Static mode: the paper's batch-size threshold picks GPU vs
        hybrid.  With a :class:`~repro.utils.EwmaCalibrator` attached,
        the choice is instead an argmin over the two modeled mode costs
        after applying each mode's learned measured/modeled ratio, so a
        machine whose real PCIe or CPU differs from the model migrates
        the crossover point automatically.
        """
        gpu_plan = self._model_gpu_plan(m, n, dim, nlist)
        hybrid_plan = self._model_hybrid_plan(m, n, dim, nlist)
        if self.calibrator is None:
            if m >= self.config.batch_threshold:
                return gpu_plan
            return hybrid_plan
        corrected = sorted(
            (self.calibrator.correct(f"mode:{p.mode}", p.total_seconds), p.mode, p)
            for p in (gpu_plan, hybrid_plan)
        )
        return corrected[0][2]

    def observe_execution(self, plan: ExecutionPlan, measured_seconds: float) -> None:
        """Feed a measured wall time back into the mode calibration."""
        if self.calibrator is not None:
            self.calibrator.observe(
                f"mode:{plan.mode}", plan.total_seconds, measured_seconds
            )

    def _model_gpu_plan(self, m: int, n: int, dim: int, nlist: int) -> ExecutionPlan:
        cfg = self.config
        transfer = self._bucket_transfer_seconds(m, n, dim, nlist, batched=True)
        step1 = self.gpu.kernel_seconds(m, nlist, dim, cfg.flops_per_pair)
        step2 = self.gpu.kernel_seconds(
            m, self._scanned_rows(n, nlist), dim, cfg.flops_per_pair
        )
        return ExecutionPlan("gpu", "gpu", "gpu", transfer, step1, step2)

    def _model_hybrid_plan(self, m: int, n: int, dim: int, nlist: int) -> ExecutionPlan:
        # Hybrid: centroids are resident on GPU (tiny), buckets stay on CPU.
        step1 = self.gpu.kernel_seconds(m, nlist, dim, self.config.flops_per_pair)
        step2 = self._cpu_scan_seconds(m, n, dim, nlist)
        return ExecutionPlan("hybrid", "gpu", "cpu", 0.0, step1, step2)

    def model_pure_cpu(self, m: int, n: int, dim: int, nlist: int) -> float:
        """Modeled seconds for SQ8 entirely on CPU (per-query coarse step)."""
        step1_flops = self.config.flops_per_pair * m * nlist * dim
        step1 = step1_flops / (self.config.cpu_coarse_gflops * 1e9)
        return step1 + self._cpu_scan_seconds(m, n, dim, nlist)

    def model_pure_gpu(self, m: int, n: int, dim: int, nlist: int) -> float:
        """Modeled seconds for Faiss-style GPU SQ8: bucket-by-bucket copies."""
        transfer = self._bucket_transfer_seconds(m, n, dim, nlist, batched=False)
        step1 = self.gpu.kernel_seconds(m, nlist, dim, self.config.flops_per_pair)
        step2 = self.gpu.kernel_seconds(
            m, self._scanned_rows(n, nlist), dim, self.config.flops_per_pair
        )
        return transfer + step1 + step2

    def model_sq8h(self, m: int, n: int, dim: int, nlist: int) -> float:
        return self.model_plan(m, n, dim, nlist).total_seconds

    def model_times(self, m: int, n: int, dim: int, nlist: int) -> Dict[str, float]:
        """All three curves of Fig. 13 at one batch size."""
        return {
            "pure_cpu": self.model_pure_cpu(m, n, dim, nlist),
            "pure_gpu": self.model_pure_gpu(m, n, dim, nlist),
            "sq8h": self.model_sq8h(m, n, dim, nlist),
        }

    # -- internals ---------------------------------------------------------------

    def _scanned_rows(self, n: int, nlist: int) -> int:
        return int(n * min(1.0, self.config.nprobe / nlist))

    def _touched_bucket_bytes(self, m: int, n: int, dim: int, nlist: int) -> float:
        """Bytes of unique buckets the batch touches (SQ8: 1 B/dim).

        Each query probes ``nprobe`` buckets; a batch of m queries
        touches ``nlist * (1 - (1 - nprobe/nlist)^m)`` distinct buckets
        in expectation.
        """
        p = min(1.0, self.config.nprobe / nlist)
        distinct_fraction = 1.0 - (1.0 - p) ** m
        return distinct_fraction * n * dim  # uint8 codes

    def _bucket_transfer_seconds(
        self, m: int, n: int, dim: int, nlist: int, batched: bool
    ) -> float:
        nbytes = self._touched_bucket_bytes(m, n, dim, nlist)
        return self.gpu.transfer_seconds(nbytes, batched=batched)

    def _cpu_scan_seconds(self, m: int, n: int, dim: int, nlist: int) -> float:
        flops = self.config.flops_per_pair * m * self._scanned_rows(n, nlist) * dim
        compute = flops / (self.cpu.scan_gflops * 1e9)
        overhead = m * self.config.nprobe * self.config.cpu_bucket_overhead_s
        return compute + overhead
