"""GPU search engine over LSM segments.

Ties Sec. 2.3 ("the segment is the basic unit of searching,
scheduling, and buffering") to Sec. 3.3's multi-GPU scheduling: every
live segment becomes one search task, the scheduler places tasks on
devices (each segment served by a single GPU), the *results* come from
real per-segment searches, and the modeled makespan reports what the
device fleet would take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hetero.gpu import GPUDevice
from repro.hetero.scheduler import SearchTask, SegmentScheduler
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.obs.profile import profile_stage
from repro.storage.lsm import LSMManager
from repro.utils import merge_topk


@dataclass
class GPUSearchOutcome:
    """Merged results + the device-fleet timing model."""

    result: SearchResult
    makespan_seconds: float
    assignments: List


class GPUSearchEngine:
    """Segment-parallel search across a fleet of (modeled) GPUs."""

    def __init__(self, lsm: LSMManager, devices: Sequence[GPUDevice]):
        if not devices:
            raise ValueError("need at least one GPU device")
        self.lsm = lsm
        self.scheduler = SegmentScheduler(devices)

    def add_device(self, device: GPUDevice) -> None:
        """Elastic scale-out: new GPUs join between batches (Sec. 3.3)."""
        self.scheduler.add_device(device)

    def search(
        self, field: str, queries: np.ndarray, k: int, **search_params
    ) -> GPUSearchOutcome:
        """Search every live segment; one task per segment.

        The per-segment execution is the real engine code; the
        scheduler supplies placement and the modeled completion time.
        """
        metric = get_metric(self.lsm.vector_specs[field][1])
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        snap = self.lsm.snapshot()
        self.scheduler.reset_clock()
        try:
            partials = []
            assignments = []
            for seg_id in snap.segment_ids:
                segment = self.lsm.bufferpool.get(seg_id, pin=True)
                try:
                    task = SearchTask(
                        segment_id=seg_id,
                        nbytes=segment.memory_bytes(),
                        m=len(queries),
                        n=segment.num_rows,
                        dim=self.lsm.vector_specs[field][0],
                    )
                    assignment = self.scheduler.dispatch(task)
                    assignments.append(assignment)
                    with profile_stage(
                        "hetero.segment",
                        segment=seg_id,
                        device=f"gpu-{assignment.device_id}",
                    ):
                        partials.append(
                            segment.search(
                                field, queries, k, exclude=snap.tombstones,
                                **search_params,
                            )
                        )
                finally:
                    self.lsm.bufferpool.unpin(seg_id)
            result = SearchResult.empty(len(queries), k, metric)
            for qi in range(len(queries)):
                parts = [
                    (p.ids[qi][p.ids[qi] >= 0], p.scores[qi][p.ids[qi] >= 0])
                    for p in partials
                ]
                ids, scores = merge_topk(parts, k, metric.higher_is_better)
                result.ids[qi, : len(ids)] = ids
                result.scores[qi, : len(scores)] = scores
            return GPUSearchOutcome(
                result=result,
                makespan_seconds=self.scheduler.makespan(),
                assignments=assignments,
            )
        finally:
            self.lsm.release(snap)
