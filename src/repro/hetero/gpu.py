"""GPU engine (paper Sec. 3.3): large-k kernel + device cost model.

Real algorithm: :func:`gpu_topk_large_k` reproduces Milvus's
multi-round top-k for k > 1024 ("Milvus executes the query in multiple
rounds to cumulatively produce the final results"), including the
duplicate-distance bookkeeping at round boundaries.

Modeled hardware: :class:`GPUDevice` wraps a :class:`GPUSpec` with
transfer/kernel cost accounting, distinguishing Faiss-style
bucket-by-bucket copies (the paper measured only 1-2 GB/s effective)
from Milvus's multi-bucket batched copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.hetero.hardware import GPUSpec, TESLA_T4
from repro.metrics import Metric, get_metric
from repro.utils import topk_from_scores

GPU_ROUND_K = 1024  # shared-memory limit per kernel round


def gpu_topk_large_k(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    metric="l2",
    round_k: int = GPU_ROUND_K,
) -> Tuple[np.ndarray, np.ndarray]:
    """Multi-round exact top-k supporting k beyond the kernel limit.

    Round 1 takes the best ``round_k``.  Every later round reads the
    worst score so far (d_l), records the ids tied at d_l, filters out
    anything strictly better than d_l *or* recorded, and takes the next
    ``round_k`` from the remainder — guaranteeing earlier results never
    reappear (Sec. 3.3).  Milvus caps k at 16384 to bound network
    transfer; we enforce the same cap.
    """
    if k > 16384:
        raise ValueError("k is capped at 16384 (paper Sec. 3.3, footnote 5)")
    metric = get_metric(metric)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    data = np.asarray(data, dtype=np.float32)
    m, n = len(queries), len(data)
    k_eff = min(k, n)
    out_ids = np.full((m, k_eff), -1, dtype=np.int64)
    out_scores = np.full((m, k_eff), metric.worst_value(), dtype=np.float64)

    scores_all = metric.pairwise(queries, data)
    sign = -1.0 if metric.higher_is_better else 1.0
    for qi in range(m):
        keyed = sign * scores_all[qi]  # lower = better
        collected_ids: List[np.ndarray] = []
        collected_keyed: List[np.ndarray] = []
        total = 0
        d_l: Optional[float] = None
        recorded: Set[int] = set()
        while total < k_eff:
            if d_l is None:
                remaining_mask = np.ones(n, dtype=bool)
            else:
                # Filter out already-returned territory: anything
                # strictly better than d_l, plus recorded ties at d_l.
                remaining_mask = keyed > d_l
                ties = np.flatnonzero(keyed == d_l)
                tie_keep = np.array(
                    [t for t in ties if int(t) not in recorded], dtype=np.int64
                )
                remaining_mask[tie_keep] = True
            remaining = np.flatnonzero(remaining_mask)
            if len(remaining) == 0:
                break
            take = min(round_k, k_eff - total, len(remaining))
            ids_round, keyed_round = topk_from_scores(
                keyed[remaining], take, higher_is_better=False, ids=remaining
            )
            collected_ids.append(ids_round)
            collected_keyed.append(keyed_round)
            total += len(ids_round)
            d_l = float(keyed_round[-1])
            recorded = {
                int(i) for ids_part, keyed_part in zip(collected_ids, collected_keyed)
                for i, s in zip(ids_part, keyed_part) if s == d_l
            }
        if collected_ids:
            ids_cat = np.concatenate(collected_ids)[:k_eff]
            keyed_cat = np.concatenate(collected_keyed)[:k_eff]
            out_ids[qi, : len(ids_cat)] = ids_cat
            out_scores[qi, : len(keyed_cat)] = sign * keyed_cat
    return out_ids, out_scores


@dataclass
class GPUDevice:
    """One GPU with resident-data tracking and modeled costs."""

    spec: GPUSpec = field(default_factory=lambda: TESLA_T4)
    device_id: int = 0

    def __post_init__(self):
        self.resident_bytes = 0
        self._resident_keys: Set[object] = set()
        self.total_transfer_seconds = 0.0
        self.total_kernel_seconds = 0.0

    # -- residency ----------------------------------------------------------

    def fits(self, extra_bytes: int) -> bool:
        return self.resident_bytes + extra_bytes <= self.spec.memory_bytes

    def load(self, key: object, nbytes: int, batched: bool = True) -> float:
        """Copy an object to device memory; returns modeled seconds.

        Already-resident objects cost nothing; evicts nothing (callers
        manage placement).  ``batched=False`` models Faiss's
        bucket-by-bucket copies at the low effective bandwidth.
        """
        if key in self._resident_keys:
            return 0.0
        if not self.fits(nbytes):
            raise MemoryError(
                f"GPU {self.device_id}: {nbytes} bytes do not fit "
                f"({self.resident_bytes}/{self.spec.memory_bytes} used)"
            )
        seconds = self.transfer_seconds(nbytes, batched=batched)
        self._resident_keys.add(key)
        self.resident_bytes += nbytes
        self.total_transfer_seconds += seconds
        return seconds

    def evict(self, key: object, nbytes: int) -> None:
        if key in self._resident_keys:
            self._resident_keys.remove(key)
            self.resident_bytes -= nbytes

    def is_resident(self, key: object) -> bool:
        return key in self._resident_keys

    # -- modeled costs ----------------------------------------------------------

    def transfer_seconds(self, nbytes: float, batched: bool = True) -> float:
        bw = (
            self.spec.pcie_effective_batched
            if batched
            else self.spec.pcie_effective_single
        )
        return nbytes / bw

    def kernel_seconds(self, m: int, n: int, dim: int, flops_per_pair: float = 3.0) -> float:
        """Modeled distance-kernel time for an (m x n x dim) workload."""
        flops = flops_per_pair * m * n * dim
        seconds = flops / (self.spec.compute_gflops * 1e9)
        return seconds + self.spec.kernel_launch_overhead_s

    def run_kernel(self, m: int, n: int, dim: int) -> float:
        seconds = self.kernel_seconds(m, n, dim)
        self.total_kernel_seconds += seconds
        return seconds
