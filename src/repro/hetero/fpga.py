"""FPGA acceleration of IVF_PQ (the paper's stated future work).

Conclusion of the paper: "we plan to leverage FPGA to accelerate
Milvus.  We have implemented the IVF_PQ indexing on FPGA and the
initial results are encouraging."

PQ's ADC scan is an ideal FPGA workload — per code it is ``m`` table
lookups and adds, trivially pipelined at one code/cycle/lane with the
LUTs in on-chip BRAM.  The executor models that offload: codes stream
over PCIe once and stay resident in device DRAM; per batch only the
tiny ADC tables cross the bus; the scan runs at the lookup-pipeline
rate.  Real results come from the attached :class:`IVFPQIndex`; the
model supplies CPU-vs-FPGA timing at arbitrary scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hetero.hardware import CPUSpec, XEON_PLATINUM_8269
from repro.index.base import SearchResult
from repro.index.ivf_pq import IVFPQIndex


@dataclass(frozen=True)
class FPGASpec:
    """Model parameters of one FPGA accelerator card.

    ``lookup_rate`` counts (code, sub-quantizer) table lookups per
    second across all pipeline lanes — the resource that bounds an
    ADC scan.  Defaults approximate a mid-range PCIe card (e.g. an
    Alveo-class part: 256 lanes at 300 MHz).
    """

    name: str = "alveo-class"
    lookup_rate: float = 7.68e10  # lookups/s
    dram_bytes: int = 32 * 1024 ** 3
    pcie_bandwidth: float = 12e9
    batch_setup_overhead_s: float = 50e-6


class FPGAPQExecutor:
    """IVF_PQ scans offloaded to an FPGA (modeled), results real."""

    def __init__(
        self,
        index: Optional[IVFPQIndex] = None,
        spec: FPGASpec = FPGASpec(),
        cpu: CPUSpec = XEON_PLATINUM_8269,
    ):
        self.index = index
        self.spec = spec
        self.cpu = cpu
        self._codes_resident = False

    # -- real execution ---------------------------------------------------

    def search(self, queries: np.ndarray, k: int, nprobe: int = 8) -> SearchResult:
        """Real IVF_PQ search (the offload changes time, not results)."""
        if self.index is None:
            raise RuntimeError("FPGAPQExecutor has no attached index")
        self._codes_resident = True  # codes ship on first use
        return self.index.search(queries, k, nprobe=nprobe)

    # -- timing model -----------------------------------------------------------

    def _scan_lookups(self, m: int, n: int, msub: int, nprobe: int, nlist: int) -> float:
        scanned = n * min(1.0, nprobe / nlist)
        return m * scanned * msub

    def model_fpga_seconds(
        self, m: int, n: int, msub: int, nprobe: int, nlist: int,
        tables_bytes_per_query: int = 8192, first_batch: bool = False,
    ) -> float:
        """Offloaded scan: table upload + pipelined lookups.

        ``first_batch=True`` adds the one-time code upload (n * msub
        bytes over PCIe); afterwards codes are DRAM-resident.
        """
        upload = 0.0
        if first_batch:
            upload = (n * msub) / self.spec.pcie_bandwidth
        tables = m * tables_bytes_per_query / self.spec.pcie_bandwidth
        scan = self._scan_lookups(m, n, msub, nprobe, nlist) / self.spec.lookup_rate
        return upload + tables + scan + self.spec.batch_setup_overhead_s

    def model_cpu_seconds(
        self, m: int, n: int, msub: int, nprobe: int, nlist: int,
        lookups_per_second: float = 2e9,
    ) -> float:
        """CPU ADC scan: gather-bound, a few lookups per cycle per core."""
        effective = lookups_per_second * self.cpu.threads
        return self._scan_lookups(m, n, msub, nprobe, nlist) / effective

    def model_speedup(
        self, m: int, n: int, msub: int = 8, nprobe: int = 64, nlist: int = 16384,
    ) -> float:
        cpu = self.model_cpu_seconds(m, n, msub, nprobe, nlist)
        fpga = self.model_fpga_seconds(m, n, msub, nprobe, nlist)
        return cpu / fpga

    def fits(self, n: int, msub: int) -> bool:
        """Whether the PQ codes fit in device DRAM (1 byte per code)."""
        return n * msub <= self.spec.dram_bytes
