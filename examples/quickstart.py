"""Quickstart: create a collection, insert, flush, search, delete.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CollectionSchema, MilvusLite, VectorField, AttributeField


def main():
    # 1. Start an embedded server and define a collection: one vector
    #    field plus a numeric attribute (an "entity" in the paper).
    server = MilvusLite()
    schema = CollectionSchema(
        name="articles",
        vector_fields=[VectorField("embedding", dim=64, metric="l2")],
        attribute_fields=[AttributeField("year")],
    )
    articles = server.create_collection(schema)

    # 2. Insert 5000 entities.  Writes buffer in the MemTable; flush()
    #    seals them into a searchable segment (Sec. 2.3 of the paper).
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(5000, 64)).astype(np.float32)
    years = rng.integers(1990, 2025, size=5000).astype(np.float64)
    ids = articles.insert({"embedding": embeddings, "year": years})
    articles.flush()
    print(f"inserted {articles.num_entities} entities")

    # 3. Vector query: top-5 nearest articles to a probe embedding.
    probe = embeddings[123]
    result = articles.search("embedding", probe, k=5)
    print("top-5 neighbours:", result.row(0))

    # 4. Attribute filtering: same query, but only articles from 2020+.
    filtered = articles.search(
        "embedding", probe, k=5, filter=("year", 2020, 2025)
    )
    hit_ids = filtered.ids[0][filtered.ids[0] >= 0]
    print("2020+ hits:", list(zip(hit_ids.tolist(),
                                  articles.fetch_attributes("year", hit_ids))))

    # 5. Build an IVF index for faster search on large segments.
    articles.create_index("embedding", "IVF_FLAT", nlist=64)
    result = articles.search("embedding", probe, k=5, nprobe=8)
    print("indexed search top hit:", result.row(0)[0])

    # 6. Delete and verify (out-of-place delete, visible after flush).
    articles.delete([int(ids[123])])
    articles.flush()
    result = articles.search("embedding", probe, k=1, nprobe=64)
    print(f"after deleting id {ids[123]}, top hit is now:", result.row(0)[0])


if __name__ == "__main__":
    main()
