"""Chemical structure analysis (paper Sec. 6.2).

"A new efficient paradigm of understanding the structure of a chemical
substance is to encode it into a high-dimensional vector and use
vector similarity search (e.g., with Tanimoto distance) to find
similar structures."  Molecule fingerprints are simulated binary
ECFP-style codes grouped into scaffold families; search runs over the
BIN_FLAT index with Tanimoto and Jaccard distances.

Run:  python examples/chemical_search.py
"""

import numpy as np

from repro import BinaryFlatIndex
from repro.datasets import chemical_fingerprints
from repro.metrics import jaccard_pairwise, unpack_bits

N_MOLECULES = 50000
N_BITS = 1024


def main():
    codes, families = chemical_fingerprints(
        N_MOLECULES, n_bits=N_BITS, n_families=200, seed=0
    )
    print(f"fingerprint library: {N_MOLECULES} molecules, {N_BITS}-bit ECFP-style codes")

    # Tanimoto is the cheminformatics standard (paper cites Bajusz et al.).
    index = BinaryFlatIndex(N_BITS, metric="tanimoto")
    index.add(codes)

    # Take a query molecule and find its structural analogues.
    query_id = 12345
    result = index.search(codes[query_id], k=6)
    print(f"\nanalogues of molecule {query_id} (family {families[query_id]}):")
    for mol_id, dist in result.row(0):
        bits_on = int(unpack_bits(codes[mol_id], N_BITS).sum())
        marker = "query itself" if mol_id == query_id else (
            "same scaffold" if families[mol_id] == families[query_id] else "other scaffold"
        )
        print(f"  molecule {mol_id:6d}: tanimoto={dist:6.3f} "
              f"bits_on={bits_on:3d} ({marker})")

    # Jaccard gives the same ranking on binary data (monotone transform)
    # but bounded scores, convenient for similarity thresholds.
    jindex = BinaryFlatIndex(N_BITS, metric="jaccard")
    jindex.add(codes)
    jresult = jindex.search(codes[query_id], k=6)
    sims = [1.0 - d for __, d in jresult.row(0)]
    print(f"\nsame search as Jaccard similarity: {[f'{s:.3f}' for s in sims]}")

    # Similarity screening: everything within Jaccard distance 0.4
    # (a typical 'likely same series' threshold).
    dists = jaccard_pairwise(codes[query_id], codes)[0]
    n_close = int((dists <= 0.4).sum())
    print(f"molecules within Jaccard distance 0.4: {n_close} "
          f"(family size is {int((families == families[query_id]).sum())})")


if __name__ == "__main__":
    main()
