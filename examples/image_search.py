"""Image search with attribute filtering (paper Sec. 6.1 + Sec. 4.1).

The scenario the paper motivates with Qichacha / Beike Zhaofang and
the e-commerce example: "finding the T-shirts similar to a given
image vector that also cost less than $100".  Image embeddings are
simulated (in production they would come from VGG/ResNet); the query
path — vector similarity + price range — is the real thing, including
the partition-based strategy E for the hot 'price' attribute.

Run:  python examples/image_search.py
"""

import numpy as np

from repro import (
    AttributeField,
    CategoricalField,
    CollectionSchema,
    MilvusLite,
    VectorField,
)
from repro.datasets import gaussian_mixture
from repro.filtering import AttributeUsageTracker, PartitionedFilterEngine

N_PRODUCTS = 20000
EMBED_DIM = 96


def simulated_cnn_embeddings(n, seed=0):
    """Stand-in for ResNet features: clustered by product category."""
    return gaussian_mixture(n, EMBED_DIM, n_clusters=40, cluster_std=0.25, seed=seed)


def main():
    rng = np.random.default_rng(7)
    embeddings = simulated_cnn_embeddings(N_PRODUCTS)
    prices = rng.gamma(shape=2.0, scale=40.0, size=N_PRODUCTS)  # skewed, like real prices

    categories = rng.choice(
        ["tshirt", "dress", "shoes", "bag", "hat"], N_PRODUCTS
    )

    # -- collection-level workflow ---------------------------------------
    server = MilvusLite()
    products = server.create_collection(CollectionSchema(
        "products",
        vector_fields=[VectorField("image", EMBED_DIM, "l2")],
        attribute_fields=[AttributeField("price")],
        categorical_fields=[CategoricalField("category")],  # bitmap-indexed
    ))
    products.insert({
        "image": embeddings, "price": prices, "category": categories,
    })
    products.flush()
    products.create_index("image", "IVF_FLAT", nlist=128)

    query_image = embeddings[4242] + rng.normal(0, 0.05, EMBED_DIM).astype(np.float32)

    result = products.search("image", query_image, k=5, nprobe=16)
    print("similar products (no filter):")
    for pid, score in result.row(0):
        print(f"  product {pid}: distance={score:.1f} price=${prices[pid]:.2f}")

    result = products.search(
        "image", query_image, k=5, filter=("price", 0.0, 100.0), nprobe=16
    )
    print("similar products under $100:")
    for pid, score in result.row(0):
        print(f"  product {pid}: distance={score:.1f} price=${prices[pid]:.2f}")

    # Categorical filter (paper's future-work feature): only t-shirts
    # and dresses, via the bitmap-indexed category column.
    result = products.search(
        "image", query_image, k=5,
        filter=("category", "in", ["tshirt", "dress"]), nprobe=16,
    )
    print("similar t-shirts/dresses:")
    for pid, score in result.row(0):
        print(f"  product {pid}: distance={score:.1f} "
              f"category={categories[pid]} price=${prices[pid]:.2f}")

    # -- strategy E for the hot attribute ---------------------------------
    # The tracker notices 'price' is the frequently filtered attribute;
    # the engine partitions on it offline (Sec. 4.1, strategy E).
    tracker = AttributeUsageTracker()
    for __ in range(50):
        tracker.record("price", 0, 100)
    print(f"most filtered attribute: {tracker.most_frequent()!r}")

    partitioned = PartitionedFilterEngine(
        embeddings, prices, n_partitions=20, metric="l2", seed=0
    )
    hits = partitioned.search(query_image, 0.0, 100.0, 5, nprobe=16)
    print(f"strategy E ({partitioned.last_pruned} partitions pruned, "
          f"{partitioned.last_covered} fully covered):")
    for pid, score in zip(hits.ids.tolist(), hits.scores.tolist()):
        print(f"  product {pid}: distance={score:.1f} price=${prices[pid]:.2f}")


if __name__ == "__main__":
    main()
