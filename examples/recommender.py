"""Personalized recommendation (paper Sec. 6, application #5).

The intro's motivating workload: "a recent popular approach in
recommender systems is called vector embedding that converts an item
to a feature vector ... and provides recommendations via finding
similar vectors."  User and item embeddings share a latent space;
recommendation = top-k inner-product search over item vectors, with
business filters (price range, category, exclude-already-seen).

Run:  python examples/recommender.py
"""

import numpy as np

from repro import (
    AttributeField,
    CategoricalField,
    CollectionSchema,
    MilvusLite,
    VectorField,
)

N_ITEMS = 30000
N_USERS = 500
LATENT_DIM = 48


def factorize(seed=0):
    """Stand-in for a trained matrix factorization: users and items in
    one latent space, with taste clusters."""
    rng = np.random.default_rng(seed)
    taste_centers = rng.normal(0, 1.0, size=(20, LATENT_DIM)).astype(np.float32)
    item_taste = rng.integers(20, size=N_ITEMS)
    items = taste_centers[item_taste] + rng.normal(0, 0.4, (N_ITEMS, LATENT_DIM)).astype(np.float32)
    user_taste = rng.integers(20, size=N_USERS)
    users = taste_centers[user_taste] + rng.normal(0, 0.4, (N_USERS, LATENT_DIM)).astype(np.float32)
    return items.astype(np.float32), users.astype(np.float32), item_taste, user_taste, rng


def main():
    items, users, item_taste, user_taste, rng = factorize()
    prices = rng.gamma(2.0, 25.0, N_ITEMS)
    categories = rng.choice(["books", "music", "games", "home"], N_ITEMS)

    server = MilvusLite()
    catalog = server.create_collection(CollectionSchema(
        "catalog",
        vector_fields=[VectorField("embedding", LATENT_DIM, "ip")],
        attribute_fields=[AttributeField("price")],
        categorical_fields=[CategoricalField("category")],
    ))
    catalog.insert({"embedding": items, "price": prices, "category": categories})
    catalog.flush()
    catalog.create_index("embedding", "IVF_FLAT", nlist=128)

    user_id = 42
    user_vec = users[user_id]
    print(f"user {user_id} (taste cluster {user_taste[user_id]}):")

    result = catalog.search("embedding", user_vec, k=5, nprobe=16)
    print("top recommendations:")
    for item, score in result.row(0):
        print(f"  item {item:6d}: score={score:6.2f} taste={item_taste[item]:2d} "
              f"{categories[item]:5s} ${prices[item]:.2f}")
    taste_hits = sum(
        1 for item, __ in result.row(0) if item_taste[item] == user_taste[user_id]
    )
    print(f"({taste_hits}/5 recommendations share the user's taste cluster)")

    result = catalog.search(
        "embedding", user_vec, k=5, filter=("price", 0.0, 30.0), nprobe=16
    )
    print("budget recommendations (<= $30):")
    for item, score in result.row(0):
        print(f"  item {item:6d}: score={score:6.2f} ${prices[item]:.2f}")

    result = catalog.search(
        "embedding", user_vec, k=5,
        filter=("category", "in", ["books", "music"]), nprobe=16,
    )
    print("books & music only:")
    for item, score in result.row(0):
        print(f"  item {item:6d}: score={score:6.2f} {categories[item]}")

    # Exclude already-purchased items the out-of-place way: a session
    # can simply drop them from the result, but a returning user's
    # purchases can be deleted from their personalized view collection.
    purchased = [int(result.ids[0, 0])]
    catalog.delete(purchased)
    catalog.flush()
    result = catalog.search(
        "embedding", user_vec, k=5,
        filter=("category", "in", ["books", "music"]), nprobe=16,
    )
    print(f"after purchasing item {purchased[0]} (deleted from the view):")
    assert purchased[0] not in result.ids[0]
    for item, score in result.row(0):
        print(f"  item {item:6d}: score={score:6.2f} {categories[item]}")


if __name__ == "__main__":
    main()
