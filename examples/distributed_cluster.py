"""Distributed deployment walkthrough (paper Sec. 5.3).

Shows the shared-storage architecture end to end: a writer shipping
per-shard logs, readers consuming them, consistent-hash sharding,
fan-out search with merge, elastic scale-out, and K8s-style crash
recovery of a stateless reader.

Run:  python examples/distributed_cluster.py
"""

import numpy as np

from repro.datasets import exact_ground_truth, recall_at_k, random_queries, sift_like
from repro.distributed import MilvusCluster, ReaderNode

N = 30000
DIM = 48


def main():
    data = sift_like(N, dim=DIM, n_clusters=48, seed=0)
    queries = random_queries(data, 50, seed=1)
    truth = exact_ground_truth(queries, data, 10)

    # Single writer, four readers, shared object store underneath.
    cluster = MilvusCluster(4, dim=DIM, index_type="IVF_FLAT")
    cluster.insert(np.arange(N), data)
    cluster.sync()
    print("shard sizes:", cluster.shard_sizes())

    res = cluster.search(queries, 10, nprobe=16)
    print(f"fan-out search: recall={recall_at_k(res.result.ids, truth):.3f} "
          f"wall={res.wall_seconds * 1000:.1f}ms "
          f"simulated-parallel={res.simulated_parallel_seconds * 1000:.1f}ms")

    # Elastic scale-out: register a fifth reader at runtime.  New data
    # routed to it will be served; existing shards stay where they are.
    cluster.add_reader(ReaderNode("reader-4", cluster.shared, DIM, "l2", "IVF_FLAT"))
    extra = sift_like(5000, dim=DIM, seed=2)
    cluster.insert(np.arange(N, N + 5000), extra)
    cluster.sync()
    print(f"after scale-out to {cluster.num_readers} readers: "
          f"{cluster.total_rows()} rows, shards={cluster.shard_sizes()}")

    # Crash a reader: searches degrade to the live shards (availability),
    # then a K8s-style respawn rebuilds the lost state from shared storage.
    cluster.crash_reader("reader-2")
    degraded = cluster.search(queries, 10, nprobe=16)
    print(f"reader-2 down: recall={recall_at_k(degraded.result.ids, truth):.3f}")
    cluster.restart_reader("reader-2")
    restored = cluster.search(queries, 10, nprobe=16)
    print(f"reader-2 respawned from shared storage: "
          f"recall={recall_at_k(restored.result.ids, truth):.3f}")

    # Coordinator HA: kill the leader, a follower takes over.
    coord = cluster.coordinator
    old_leader = coord.leader
    coord.kill_replica(old_leader)
    print(f"coordinator leader {old_leader} crashed -> new leader {coord.leader}, "
          f"quorum={coord.has_quorum()}")


if __name__ == "__main__":
    main()
