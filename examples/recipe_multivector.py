"""Recipe-food search with multi-vector queries (paper Sec. 4.2 / 7.6).

Each recipe is two vectors — a text embedding of the description and
an image embedding of the dish photo (Recipe1M-style).  The example
runs the same query through all three multi-vector algorithms and
compares them against the exact aggregated ground truth.

Run:  python examples/recipe_multivector.py
"""

import numpy as np

from repro import CollectionSchema, MilvusLite, VectorField
from repro.datasets import recipe_like

N_RECIPES = 10000
TEXT_DIM = 64
IMAGE_DIM = 48


def exact_topk(entities, query, k, weights):
    agg = (weights["text"] * ((entities["text"] - query["text"]) ** 2).sum(axis=1)
           + weights["image"] * ((entities["image"] - query["image"]) ** 2).sum(axis=1))
    return np.argsort(agg, kind="stable")[:k]


def main():
    entities = recipe_like(
        N_RECIPES, text_dim=TEXT_DIM, image_dim=IMAGE_DIM,
        correlation=0.6, seed=0,
    )

    server = MilvusLite()
    recipes = server.create_collection(CollectionSchema(
        "recipes",
        vector_fields=[
            VectorField("text", TEXT_DIM, "l2"),
            VectorField("image", IMAGE_DIM, "l2"),
        ],
    ))
    recipes.insert({"text": entities["text"], "image": entities["image"]})
    recipes.flush()
    print(f"indexed {recipes.num_entities} recipes "
          f"(text {TEXT_DIM}-d + image {IMAGE_DIM}-d)")

    # The query entity: a dish we have both a description and photo of.
    # Weight text description twice as heavily as the photo.
    weights = {"text": 2.0, "image": 1.0}
    query = {"text": entities["text"][777], "image": entities["image"][777]}
    truth = exact_topk(entities, query, 5, weights)
    print("exact aggregated top-5:", truth.tolist())

    for method in ("fusion", "iterative", "naive"):
        hits = recipes.multi_vector_search(query, k=5, weights=weights, method=method)
        found = [i for i, __ in hits[0]]
        overlap = len(set(found) & set(truth.tolist()))
        print(f"{method:10s}: {found}  ({overlap}/5 match exact)")

    # Fusion requires a decomposable metric; squared L2 decomposes over
    # the concatenation, so it is exact here (Sec. 4.2).
    hits = recipes.multi_vector_search(query, k=3, weights=weights, method="fusion")
    print("\nweighted aggregated distances of the top hits:")
    for rid, score in hits[0]:
        print(f"  recipe {rid}: aggregated L2^2 = {score:.3f}")


if __name__ == "__main__":
    main()
