"""Intelligent question answering (paper Sec. 6, application #7).

The classic retrieval-based QA loop: embed a corpus of answer
passages, embed the incoming question, find the nearest passages by
cosine similarity, answer from the best hit.  Embeddings are
simulated topic-clustered sentence vectors; the retrieval machinery —
cosine metric, normalized vectors, HNSW index for low-latency single
queries — is the real system.

Also demonstrates the paper's Sec. 4.2 remark: on normalized data,
cosine reduces to inner product, so the two metrics rank identically.

Run:  python examples/question_answering.py
"""

import numpy as np

from repro import CollectionSchema, MilvusLite, VectorField
from repro.datasets import gaussian_mixture

N_PASSAGES = 15000
EMBED_DIM = 96
N_TOPICS = 50


def embed_corpus(seed=0):
    """Simulated sentence embeddings, clustered by topic, normalized."""
    vectors = gaussian_mixture(
        N_PASSAGES, EMBED_DIM, n_clusters=N_TOPICS, cluster_std=0.35, seed=seed
    )
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    rng = np.random.default_rng(seed)
    topics = rng.integers(N_TOPICS, size=N_PASSAGES)
    return vectors.astype(np.float32), topics, rng


def main():
    passages, topics, rng = embed_corpus()

    server = MilvusLite()
    kb = server.create_collection(CollectionSchema(
        "knowledge_base",
        vector_fields=[VectorField("embedding", EMBED_DIM, "cosine")],
    ))
    kb.insert({"embedding": passages})
    kb.flush()
    # HNSW: single interactive questions want low latency, not batch
    # throughput — the graph index's sweet spot.
    kb.create_index("embedding", "HNSW", M=12, ef_construction=80)
    print(f"knowledge base: {kb.num_entities} passages, cosine + HNSW")

    # An incoming question: embeds near some passage's topic.
    anchor = 4242
    question = passages[anchor] + rng.normal(0, 0.05, EMBED_DIM).astype(np.float32)
    question /= np.linalg.norm(question)

    result = kb.search("embedding", question, k=3, ef=64)
    print("\ncandidate answer passages:")
    for pid, similarity in result.row(0):
        same = "same topic" if topics[pid] == topics[anchor] else "other topic"
        print(f"  passage {pid:6d}: cosine={similarity:.4f} ({same})")
    best = result.row(0)[0]
    print(f"answering from passage {best[0]} (confidence {best[1]:.3f})")

    # Sec. 4.2's remark in action: with normalized vectors, inner
    # product ranks identically to cosine.
    kb_ip = server.create_collection(CollectionSchema(
        "knowledge_base_ip",
        vector_fields=[VectorField("embedding", EMBED_DIM, "ip")],
    ))
    kb_ip.insert({"embedding": passages})
    kb_ip.flush()
    ip_result = kb_ip.search("embedding", question, k=3)
    cosine_ids = [i for i, __ in result.row(0)]
    ip_ids = [i for i, __ in ip_result.row(0)]
    print(f"\ncosine top-3 {cosine_ids} == inner-product top-3 {ip_ids}: "
          f"{set(cosine_ids) == set(ip_ids)} (normalized data)")


if __name__ == "__main__":
    main()
