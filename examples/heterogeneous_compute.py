"""Tour of the heterogeneous computing layer (paper Sec. 3).

Walks through the four optimizations: the cache-aware batch design
(Equation (1)), runtime SIMD dispatch, the SQ8H CPU/GPU hybrid
(Algorithm 1), multi-GPU segment scheduling — plus the FPGA IVF_PQ
offload from the paper's conclusion.

Run:  python examples/heterogeneous_compute.py
"""

import time

import numpy as np

from repro.datasets import sift_like
from repro.hetero import (
    CORE_I7_8700,
    XEON_PLATINUM_8269,
    CacheAwareSearcher,
    FPGAPQExecutor,
    GPUDevice,
    GPUSearchEngine,
    SQ8HConfig,
    SQ8HExecutor,
    SimdDispatcher,
    query_block_size,
)
from repro.index import IVFSQ8Index
from repro.storage import LSMConfig, LSMManager, TieredMergePolicy


def cache_aware_demo():
    print("== cache-aware batch design (Sec. 3.2.1) ==")
    s = query_block_size(XEON_PLATINUM_8269.l3_bytes, dim=128, threads=16, k=50)
    print(f"Equation (1): on the Xeon (35.75MB L3, 16 threads, k=50, d=128), "
          f"query block size s = {s}")
    data = sift_like(20000, dim=32, seed=0)
    queries = sift_like(512, dim=32, seed=9)
    searcher = CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269)
    t0 = time.perf_counter()
    ids_a, scores_a = searcher.search_original(queries, 10)
    t_orig = time.perf_counter() - t0
    t0 = time.perf_counter()
    ids_b, scores_b = searcher.search_cache_aware(queries, 10, threads=4)
    t_blocked = time.perf_counter() - t0
    # Same top-k (float rounding can reorder exact ties at the boundary).
    assert np.allclose(scores_a, scores_b, rtol=1e-4, atol=1e-2)
    print(f"original {t_orig:.3f}s vs cache-aware {t_blocked:.3f}s "
          f"({t_orig / t_blocked:.2f}x), identical results\n")


def simd_demo():
    print("== automatic SIMD dispatch (Sec. 3.2.2) ==")
    for cpu in (CORE_I7_8700, XEON_PLATINUM_8269):
        dispatcher = SimdDispatcher.for_cpu(cpu)
        print(f"{cpu.name}: flags {cpu.simd_flags} -> "
              f"{dispatcher.selected_level.name} kernels linked")
    print()


def sq8h_demo():
    print("== SQ8H hybrid index (Sec. 3.4, Algorithm 1) ==")
    data = sift_like(4000, dim=32, seed=1)
    index = IVFSQ8Index(32, nlist=32, seed=0)
    index.train(data)
    index.add(data)
    executor = SQ8HExecutor(index=index, config=SQ8HConfig(batch_threshold=64, nprobe=8))
    executor.search(data[:8], 5)
    print(f"batch 8  -> mode {executor.last_plan.mode} "
          f"(step1 on {executor.last_plan.step1_device}, "
          f"step2 on {executor.last_plan.step2_device})")
    executor.search(data[:128], 5)
    print(f"batch 128 -> mode {executor.last_plan.mode}")
    paper_scale = SQ8HExecutor(config=SQ8HConfig(batch_threshold=1000, nprobe=64))
    times = paper_scale.model_times(200, n=10**9, dim=128, nlist=16384)
    print(f"modeled at SIFT1B scale, batch 200: CPU {times['pure_cpu']:.1f}s, "
          f"GPU {times['pure_gpu']:.1f}s, SQ8H {times['sq8h']:.1f}s\n")


def multi_gpu_demo():
    print("== multi-GPU segment scheduling (Sec. 3.3) ==")
    cfg = LSMConfig(memtable_flush_bytes=1 << 30, index_build_min_rows=1 << 30,
                    auto_merge=False,
                    merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1))
    lsm = LSMManager({"emb": (32, "l2")}, (), cfg)
    data = sift_like(3000, dim=32, seed=2)
    for i in range(3):
        lsm.insert(np.arange(i * 1000, (i + 1) * 1000),
                   {"emb": data[i * 1000:(i + 1) * 1000]})
        lsm.flush()
    engine = GPUSearchEngine(lsm, [GPUDevice(device_id=0)])
    outcome = engine.search("emb", data[:4], 5)
    print(f"1 GPU: {len(outcome.assignments)} segment tasks, "
          f"modeled makespan {outcome.makespan_seconds * 1000:.2f}ms")
    engine.add_device(GPUDevice(device_id=1))  # runtime discovery
    outcome = engine.search("emb", data[:4], 5)
    print(f"2 GPUs (one added at runtime): makespan "
          f"{outcome.makespan_seconds * 1000:.2f}ms\n")


def fpga_demo():
    print("== FPGA IVF_PQ offload (paper conclusion / future work) ==")
    executor = FPGAPQExecutor()
    for m, n in [(1, 2000), (100, 10**8), (500, 10**9)]:
        speedup = executor.model_speedup(m=m, n=n)
        verdict = "offload" if speedup > 1 else "stay on CPU"
        print(f"batch {m:4d}, {n:>12,} codes: modeled speedup "
              f"{speedup:6.1f}x -> {verdict}")


def main():
    cache_aware_demo()
    simd_demo()
    sq8h_demo()
    multi_gpu_demo()
    fpga_demo()


if __name__ == "__main__":
    main()
