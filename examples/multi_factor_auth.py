"""Biological multi-factor authentication (paper Sec. 6, application #6).

Each enrolled person is an entity with two biometric vectors — a face
embedding and a voice embedding.  Authentication must match on *both*
factors, which is exactly min-aggregation over keyed similarities
(rank by the worst factor): an impostor who matches one factor but not
the other ranks poorly.

Run:  python examples/multi_factor_auth.py
"""

import numpy as np

from repro.datasets import gaussian_mixture
from repro.multivector import IterativeMerging

N_USERS = 5000
FACE_DIM = 64
VOICE_DIM = 32
# Accept when the worst-factor squared distance is below this.
ACCEPT_THRESHOLD = 2.0


def enroll(seed=0):
    rng = np.random.default_rng(seed)
    faces = gaussian_mixture(N_USERS, FACE_DIM, n_clusters=64, cluster_std=0.3, seed=seed)
    voices = gaussian_mixture(N_USERS, VOICE_DIM, n_clusters=64, cluster_std=0.3,
                              seed=seed + 1)
    return {"face": faces, "voice": voices}, rng


def main():
    gallery, rng = enroll()
    # AND-style matching: "min" over keyed (negated-distance) scores
    # ranks every candidate by their *worst* factor.
    matcher = IterativeMerging.over_arrays(
        gallery, metric="l2", index_type="IVF_FLAT", nlist=64,
        search_params={"nprobe": 16}, k_threshold=1024, aggregation="min",
    )

    def authenticate(face_probe, voice_probe, claimed_id):
        hits = matcher.search_one({"face": face_probe, "voice": voice_probe}, 1)
        if not hits:
            return False, None, None
        matched_id, worst_factor_dist = hits[0]
        ok = matched_id == claimed_id and worst_factor_dist <= ACCEPT_THRESHOLD
        return ok, matched_id, worst_factor_dist

    # 1. Genuine attempt: both factors are noisy captures of user 1234.
    user = 1234
    face = gallery["face"][user] + rng.normal(0, 0.05, FACE_DIM).astype(np.float32)
    voice = gallery["voice"][user] + rng.normal(0, 0.05, VOICE_DIM).astype(np.float32)
    ok, matched, dist = authenticate(face, voice, user)
    print(f"genuine attempt:   matched user {matched}, worst-factor dist "
          f"{dist:.3f} -> {'ACCEPT' if ok else 'REJECT'}")

    # 2. Single-factor impostor: user 777's face, random voice.  A
    #    sum-aggregated matcher could be fooled by one strong factor;
    #    min-aggregation rejects it.
    impostor_voice = rng.normal(0, 1.0, VOICE_DIM).astype(np.float32)
    ok, matched, dist = authenticate(gallery["face"][777], impostor_voice, 777)
    print(f"stolen-face attack: matched user {matched}, worst-factor dist "
          f"{dist:.3f} -> {'ACCEPT' if ok else 'REJECT'}")

    # 3. Contrast with sum aggregation: the same attack looks much
    #    closer under a sum, which is why the factor-AND semantics
    #    matter for authentication.
    sum_matcher = IterativeMerging.over_arrays(
        gallery, metric="l2", index_type="IVF_FLAT", nlist=64,
        search_params={"nprobe": 16}, k_threshold=1024, aggregation="sum",
    )
    hits = sum_matcher.search_one(
        {"face": gallery["face"][777], "voice": impostor_voice}, 1
    )
    print(f"(sum aggregation would rank user {hits[0][0]} first for that attack)")


if __name__ == "__main__":
    main()
