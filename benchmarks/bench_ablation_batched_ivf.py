"""Ablation: bucket-major batched IVF execution vs per-query search.

The cache-aware idea (Sec. 3.2.1) applied to inverted files: instead
of each query streaming its probed buckets, each bucket is scanned
once for every query probing it.  This is the real (measured, not
modeled) engine-level speedup behind the Milvus curves in Fig. 8.

Since the kernel push the bucket-major loop lives inside
``IVFIndexBase._search_batched`` (and ``BatchedIVFSearcher`` merely
delegates), so the per-query side of this ablation pins
``REPRO_KERNELS=0`` to force the reference per-query-per-bucket path.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.datasets import random_queries, sift_like
from repro.hetero.batched import BatchedIVFSearcher
from repro.index import IVFFlatIndex

N = 30000
DIM = 48
K = 10
BATCHES = (1, 8, 64, 256, 1024)

_cache = {}


@contextlib.contextmanager
def reference_path():
    """Force the per-query reference scan loop (kernels disabled)."""
    old = os.environ.get("REPRO_KERNELS")
    os.environ["REPRO_KERNELS"] = "0"
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_KERNELS"]
        else:
            os.environ["REPRO_KERNELS"] = old


def setup():
    if "bundle" not in _cache:
        data = sift_like(N, dim=DIM, n_clusters=64, seed=0)
        queries = random_queries(data, max(BATCHES), seed=1)
        index = IVFFlatIndex(DIM, nlist=128, seed=0)
        index.train(data)
        index.add(data)
        _cache["bundle"] = (queries, index, BatchedIVFSearcher(index))
    return _cache["bundle"]


def run_sweep(nprobe=16):
    queries, index, batched = setup()
    rows = []
    for m in BATCHES:
        q = queries[:m]
        index.search(q[:1], K, nprobe=nprobe)  # warm-up
        with reference_path():
            t0 = time.perf_counter()
            index.search(q, K, nprobe=nprobe)
            per_query = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched.search(q, K, nprobe=nprobe)
        bucket_major = time.perf_counter() - t0
        rows.append((m, per_query, bucket_major))
    return rows


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_identical_results():
    queries, index, batched = setup()
    with reference_path():
        r1 = index.search(queries[:64], K, nprobe=16)
    r2 = batched.search(queries[:64], K, nprobe=16)
    np.testing.assert_array_equal(r1.ids, r2.ids)


def test_batched_wins_at_large_batch(sweep):
    m, per_query, bucket_major = sweep[-1]
    assert bucket_major < per_query


def test_advantage_grows_with_batch(sweep):
    ratios = [pq / bm for __, pq, bm in sweep]
    assert ratios[-1] > ratios[0]


def test_benchmark_per_query(benchmark):
    queries, index, __ = setup()
    with reference_path():
        benchmark(lambda: index.search(queries[:256], K, nprobe=16))


def test_benchmark_bucket_major(benchmark):
    queries, __, batched = setup()
    benchmark(lambda: batched.search(queries[:256], K, nprobe=16))


def main():
    rows = run_sweep()
    print("=== Ablation: per-query vs bucket-major IVF execution ===")
    print_series(
        "speedup", [m for m, *__ in rows],
        [f"{pq / bm:.2f}x" for __, pq, bm in rows],
    )
    for m, pq, bm in rows:
        print(f"  batch {m:5d}: per-query {pq * 1000:8.1f}ms  "
              f"bucket-major {bm * 1000:8.1f}ms")


if __name__ == "__main__":
    main()
