"""Figure 11: the cache-aware design, on both paper CPUs.

Two complementary reproductions:

* the analytical memory-traffic model on the paper's exact CPUs
  (i7-8700 / 12 MB L3, Xeon 8269 / 35.75 MB L3), batch 1000, data
  1e3..1e7 — modeled execution times and speedups (paper: up to 2.7x
  and 1.5x respectively);
* a *real* measured comparison of the two designs in this substrate
  (blocked GEMM vs per-query streaming), demonstrating the win is not
  an artifact of the model.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.datasets import sift_like
from repro.hetero import (
    CORE_I7_8700,
    XEON_PLATINUM_8269,
    CacheAwareSearcher,
    CacheTrafficModel,
)

BATCH = 1000
DIM = 128
K = 50
MODEL_SIZES = (10**3, 10**4, 10**5, 10**6, 10**7)

REAL_N = 20000
REAL_DIM = 32
REAL_BATCH = 512


def run_model(cpu):
    model = CacheTrafficModel(cpu)
    rows = []
    for n in MODEL_SIZES:
        rows.append(
            (
                n,
                model.time_original(BATCH, n, DIM, K),
                model.time_cache_aware(BATCH, n, DIM, K),
            )
        )
    return rows


def run_real():
    data = sift_like(REAL_N, dim=REAL_DIM, n_clusters=32, seed=0)
    queries = sift_like(REAL_BATCH, dim=REAL_DIM, n_clusters=32, seed=9)
    searcher = CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269)
    searcher.search_original(queries[:16], K)  # warm-up
    started = time.perf_counter()
    searcher.search_original(queries, K)
    t_original = time.perf_counter() - started
    started = time.perf_counter()
    searcher.search_cache_aware(queries, K, threads=4)
    t_blocked = time.perf_counter() - started
    return t_original, t_blocked


def test_modeled_speedup_matches_paper():
    """Sec. 7.4: 2.7x on the 12MB CPU, 1.5x on the 35.75MB CPU."""
    for cpu, lo, hi in [(CORE_I7_8700, 2.2, 3.2), (XEON_PLATINUM_8269, 1.2, 1.8)]:
        rows = run_model(cpu)
        n, orig, blocked = rows[-1]  # largest data size
        assert lo <= orig / blocked <= hi


def test_speedup_grows_with_data_size():
    rows = run_model(CORE_I7_8700)
    speedups = [orig / blocked for __, orig, blocked in rows]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))


def test_real_blocked_design_faster():
    t_original, t_blocked = run_real()
    assert t_blocked < t_original


def test_benchmark_original(benchmark):
    data = sift_like(REAL_N, dim=REAL_DIM, seed=0)
    queries = sift_like(128, dim=REAL_DIM, seed=9)
    searcher = CacheAwareSearcher(data, "l2")
    benchmark(lambda: searcher.search_original(queries, K))


def test_benchmark_cache_aware(benchmark):
    data = sift_like(REAL_N, dim=REAL_DIM, seed=0)
    queries = sift_like(128, dim=REAL_DIM, seed=9)
    searcher = CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269)
    benchmark(lambda: searcher.search_cache_aware(queries, K, threads=4))


def main():
    for cpu, label in [(CORE_I7_8700, "Fig. 11a (12MB L3, i7-8700)"),
                       (XEON_PLATINUM_8269, "Fig. 11b (35.75MB L3, Xeon 8269)")]:
        print(f"=== {label}: modeled execution time, batch={BATCH} ===")
        rows = run_model(cpu)
        print_series(
            "original", [n for n, *__ in rows], [f"{o:.3f}s" for __, o, ___ in rows]
        )
        print_series(
            "cache-aware", [n for n, *__ in rows], [f"{c:.3f}s" for __, ___, c in rows]
        )
        print_series(
            "speedup", [n for n, *__ in rows],
            [f"{o / c:.2f}x" for __, o, c in rows],
        )
    t_original, t_blocked = run_real()
    print(f"real measurement (n={REAL_N}, batch={REAL_BATCH}): "
          f"original={t_original:.3f}s blocked={t_blocked:.3f}s "
          f"speedup={t_original / t_blocked:.2f}x")


if __name__ == "__main__":
    main()
