"""Mixed read/write: inline vs background flush engine.

The tentpole claim of the background write engine, measured: with the
flusher off the write path, an insert that lands on the freeze
threshold pays an O(1) hand-off instead of segment persistence, so
insert tail latency (p99) drops — while queries return bit-identical
results, because the background engine seals the exact same frozen
arrays the inline one does, in the same FIFO order.

Writes ``BENCH_mixed_rw.json`` (schema v1, see repro.bench.report).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import emit_bench_json, print_table
from repro.datasets import random_queries, sift_like
from repro.storage import InMemoryObjectStore, LSMConfig, LSMManager, TieredMergePolicy

DIM = 32
BATCHES = 60
BATCH_ROWS = 250
NUM_QUERIES = 50
K = 10
#: ~5-6 batches of float32[250, 32] per memtable -> ~10 freezes a run
FLUSH_BYTES = 160 << 10

SPECS = {"emb": (DIM, "l2")}


def build_lsm(background):
    cfg = LSMConfig(
        memtable_flush_bytes=FLUSH_BYTES,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=4, min_segment_bytes=1),
        auto_merge=True,
        background=background,
    )
    return LSMManager(SPECS, (), cfg, fs=InMemoryObjectStore())


def run_mode(background, data):
    """Ingest all batches, recording per-insert wall time; then query."""
    lsm = build_lsm(background)
    insert_seconds = []
    started = time.perf_counter()
    for b in range(BATCHES):
        sl = slice(b * BATCH_ROWS, (b + 1) * BATCH_ROWS)
        t0 = time.perf_counter()
        lsm.insert(np.arange(sl.start, sl.stop), {"emb": data[sl]})
        insert_seconds.append(time.perf_counter() - t0)
    lsm.flush()  # barrier: all frozen memtables sealed
    ingest_seconds = time.perf_counter() - started
    if background:
        lsm.close()
    queries = random_queries(data, NUM_QUERIES, seed=1)
    t0 = time.perf_counter()
    result = lsm.search("emb", queries, K)
    query_qps = NUM_QUERIES / (time.perf_counter() - t0)
    lat = np.asarray(insert_seconds)
    return {
        "mode": "background" if background else "inline",
        "p50": float(np.percentile(lat, 50)),
        "p99": float(np.percentile(lat, 99)),
        "qps": query_qps,
        "seconds": ingest_seconds,
        "counters": {
            "flush_count": lsm.flush_count,
            "merge_count": lsm.merge_count,
            "live_segments": len(lsm.manifest.live_segment_ids()),
        },
    }, result


def run_comparison():
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    inline_row, inline_res = run_mode(False, data)
    bg_row, bg_res = run_mode(True, data)
    identical = bool(
        np.array_equal(inline_res.ids, bg_res.ids)
        and np.array_equal(inline_res.scores, bg_res.scores)
    )
    return [inline_row, bg_row], identical


@pytest.fixture(scope="module")
def comparison():
    return run_comparison()


def test_query_results_bit_identical(comparison):
    __, identical = comparison
    assert identical


def test_background_does_equivalent_flush_work(comparison):
    rows, __ = comparison
    inline, bg = rows
    assert bg["counters"]["flush_count"] == inline["counters"]["flush_count"]
    assert bg["counters"]["live_segments"] == inline["counters"]["live_segments"]


def test_background_insert_tail_not_pathological(comparison):
    """The p99 *improvement* is asserted on the committed baseline (see
    BENCH_mixed_rw.json); a single-core CI runner can steal the bg
    thread's time, so the hard gate here is only 'no regression blowup'."""
    rows, __ = comparison
    inline, bg = rows
    assert bg["p99"] < inline["p99"] * 1.5


def test_benchmark_ingest_inline(benchmark):
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    benchmark(lambda: run_mode(False, data))


def test_benchmark_ingest_background(benchmark):
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    benchmark(lambda: run_mode(True, data))


def main(out_path: str = "BENCH_mixed_rw.json"):
    print("=== Mixed read/write: inline vs background flush ===")
    print(f"  ({BATCHES} batches x {BATCH_ROWS} rows, dim={DIM}, "
          f"freeze every ~{FLUSH_BYTES // (BATCH_ROWS * DIM * 4)} batches)")
    rows, identical = run_comparison()
    print_table(
        ["mode", "insert p50 (ms)", "insert p99 (ms)", "ingest (s)", "query qps"],
        [
            (r["mode"], f"{r['p50'] * 1e3:.3f}", f"{r['p99'] * 1e3:.3f}",
             f"{r['seconds']:.2f}", f"{r['qps']:.1f}")
            for r in rows
        ],
    )
    inline, bg = rows
    print(f"  insert p99 background/inline: {bg['p99'] / inline['p99']:.2f}x")
    print(f"  query results bit-identical: {identical}")
    emit_bench_json(
        "mixed_rw",
        workload={
            "batches": BATCHES,
            "batch_rows": BATCH_ROWS,
            "dim": DIM,
            "memtable_flush_bytes": FLUSH_BYTES,
            "num_queries": NUM_QUERIES,
            "k": K,
        },
        series=rows,
        out_path=out_path,
        bit_identical=identical,
    )


if __name__ == "__main__":
    main()
