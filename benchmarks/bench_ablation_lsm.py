"""Ablation: the tiered merge policy (DESIGN.md design-choice bench).

Sweeps the merge factor and size limit to expose the trade-off the
paper's "merge segments of approximately equal sizes until a
configurable size limit" policy navigates: merging costs write
amplification but pays back in fewer segments per search.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.datasets import random_queries, sift_like
from repro.storage import LSMConfig, LSMManager, TieredMergePolicy

DIM = 32
BATCHES = 16
BATCH_ROWS = 500
K = 10

SPECS = {"emb": (DIM, "l2")}


def build_lsm(merge_factor, auto_merge=True):
    policy = TieredMergePolicy(merge_factor=merge_factor, min_segment_bytes=1)
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        auto_merge=auto_merge,
        merge_policy=policy,
    )
    return LSMManager(SPECS, (), cfg)


def ingest(lsm, data):
    for b in range(BATCHES):
        sl = slice(b * BATCH_ROWS, (b + 1) * BATCH_ROWS)
        lsm.insert(np.arange(sl.start, sl.stop), {"emb": data[sl]})
        lsm.flush()


def run_ablation():
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    queries = random_queries(data, 50, seed=1)
    rows = []
    for merge_factor, label in [(None, "no merging"), (8, "factor=8"), (2, "factor=2")]:
        if merge_factor is None:
            lsm = build_lsm(2, auto_merge=False)
        else:
            lsm = build_lsm(merge_factor)
        ingest(lsm, data)
        segments = len(lsm.manifest.live_segment_ids())
        started = time.perf_counter()
        lsm.search("emb", queries, K)
        elapsed = time.perf_counter() - started
        rows.append((label, segments, lsm.merge_count, 50 / elapsed))
    return rows


@pytest.fixture(scope="module")
def ablation():
    return run_ablation()


def test_merging_reduces_segment_count(ablation):
    by_label = {label: segs for label, segs, *_ in ablation}
    assert by_label["factor=2"] < by_label["no merging"]


def test_aggressive_merging_more_merge_work(ablation):
    by_label = {label: merges for label, __, merges, ___ in ablation}
    assert by_label["factor=2"] >= by_label["factor=8"] >= by_label["no merging"]


def test_fewer_segments_faster_search(ablation):
    by_label = {label: qps for label, *__, qps in ablation}
    assert by_label["factor=2"] > 0.8 * by_label["no merging"]


def test_benchmark_search_unmerged(benchmark):
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    queries = random_queries(data, 50, seed=1)
    lsm = build_lsm(2, auto_merge=False)
    ingest(lsm, data)
    benchmark(lambda: lsm.search("emb", queries, K))


def test_benchmark_search_merged(benchmark):
    data = sift_like(BATCHES * BATCH_ROWS, dim=DIM, seed=0)
    queries = random_queries(data, 50, seed=1)
    lsm = build_lsm(2)
    ingest(lsm, data)
    benchmark(lambda: lsm.search("emb", queries, K))


def main():
    print("=== Ablation: tiered merge policy ===")
    rows = run_ablation()
    for label, segments, merges, qps in rows:
        print(f"  {label:12s} segments={segments:3d} merges={merges:3d} {qps:8.1f} qps")


if __name__ == "__main__":
    main()
