"""Run every figure/table report in sequence.

Usage:  python benchmarks/run_all.py [output_file]

Prints each benchmark module's paper-style series (the same output the
per-module ``python benchmarks/bench_*.py`` invocations give), in
paper order, optionally teeing to a file.
"""

from __future__ import annotations

import contextlib
import importlib
import sys
import time

MODULES = [
    "bench_table1_features",
    "bench_fig8_ivf_systems",
    "bench_fig9_hnsw_systems",
    "bench_fig10_scalability",
    "bench_fig11_cache_aware",
    "bench_fig12_simd",
    "bench_fig13_gpu_hybrid",
    "bench_fig14_attr_strategies",
    "bench_fig15_attr_systems",
    "bench_fig16_multivector",
    "bench_ablation_lsm",
    "bench_ablation_blocksize",
    "bench_ablation_batched_ivf",
    "bench_ablation_categorical",
    "bench_ablation_parallel",
]


def run_all(stream=None) -> None:
    out = stream or sys.stdout
    started = time.perf_counter()
    for name in MODULES:
        print(f"\n{'#' * 16} {name}", file=out)
        module = importlib.import_module(name)
        if stream is None:
            module.main()
        else:
            with contextlib.redirect_stdout(out):
                module.main()
    print(f"\nall reports done in {time.perf_counter() - started:.0f}s", file=out)


def main() -> None:
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fh:
            run_all(fh)
        print(f"wrote {sys.argv[1]}")
    else:
        run_all()


if __name__ == "__main__":
    main()
