"""Run every figure/table report in sequence.

Usage:  python benchmarks/run_all.py [--only=mod1,mod2] [output_file]

Prints each benchmark module's paper-style series (the same output the
per-module ``python benchmarks/bench_*.py`` invocations give), in
paper order, optionally teeing to a file.  ``--only`` restricts the
run to a comma-separated subset of module names (with or without the
``bench_`` prefix) — CI uses this to run a small profile.

After the modules run, every ``BENCH_<name>.json`` they emitted (see
:func:`repro.bench.emit_bench_json`) is combined into one
``BENCH_report.json`` for ``tools/bench_compare.py`` to diff against a
previous run.
"""

from __future__ import annotations

import contextlib
import glob
import importlib
import json
import sys
import time

MODULES = [
    "bench_table1_features",
    "bench_fig8_ivf_systems",
    "bench_fig9_hnsw_systems",
    "bench_fig10_scalability",
    "bench_fig11_cache_aware",
    "bench_fig12_simd",
    "bench_fig13_gpu_hybrid",
    "bench_fig14_attr_strategies",
    "bench_fig15_attr_systems",
    "bench_fig16_multivector",
    "bench_ablation_lsm",
    "bench_ablation_blocksize",
    "bench_ablation_batched_ivf",
    "bench_ablation_kernels",
    "bench_ablation_categorical",
    "bench_ablation_parallel",
    "bench_mixed_rw",
    "bench_obs_overhead",
]

REPORT_PATH = "BENCH_report.json"


def run_all(stream=None, only=None) -> None:
    out = stream or sys.stdout
    modules = MODULES if only is None else _select(only)
    started = time.perf_counter()
    for name in modules:
        print(f"\n{'#' * 16} {name}", file=out)
        module = importlib.import_module(name)
        if stream is None:
            module.main()
        else:
            with contextlib.redirect_stdout(out):
                module.main()
    print(f"\nall reports done in {time.perf_counter() - started:.0f}s", file=out)
    combine_reports(out)


def _select(only) -> list:
    wanted = []
    for token in only.split(","):
        token = token.strip()
        if not token:
            continue
        name = token if token.startswith("bench_") else f"bench_{token}"
        if name not in MODULES:
            raise SystemExit(f"unknown benchmark module {token!r}; "
                             f"choose from {MODULES}")
        wanted.append(name)
    return wanted


def combine_reports(out=sys.stdout, report_path: str = REPORT_PATH) -> dict:
    """Merge all emitted BENCH_<name>.json files into one report."""
    benchmarks = {}
    for path in sorted(glob.glob("BENCH_*.json")):
        if path == report_path:
            continue
        with open(path) as fh:
            payload = json.load(fh)
        benchmarks[payload.get("name", path[len("BENCH_"):-len(".json")])] = payload
    report = {
        "schema_version": 1,
        "generated_by": "benchmarks/run_all.py",
        "benchmarks": benchmarks,
    }
    with open(report_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"combined {len(benchmarks)} reports into {report_path}", file=out)
    return report


def main() -> None:
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    only = None
    args = []
    for arg in sys.argv[1:]:
        if arg.startswith("--only="):
            only = arg[len("--only="):]
        else:
            args.append(arg)
    if args:
        with open(args[0], "w") as fh:
            run_all(fh, only=only)
        print(f"wrote {args[0]}")
    else:
        run_all(only=only)


if __name__ == "__main__":
    main()
