"""Figure 13: GPU indexing — pure CPU vs pure GPU vs SQ8H.

The paper's setting (SIFT1B, data larger than the T4's 16 GB) is
reproduced with the analytical device model at the paper's own scale
(n=1e9, d=128, nlist=16384), sweeping the query batch size 1..500.
Expected shape: GPU slower than CPU throughout (PCIe transfer
dominates), the gap narrowing as the batch grows; SQ8H below both
everywhere.  A small real execution validates Algorithm 1's mode
switch over an actual IVF_SQ8 index, and the ablation sweep covers the
batch-threshold design choice flagged in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.bench import print_series
from repro.datasets import sift_like
from repro.hetero import GPUDevice, SQ8HConfig, SQ8HExecutor
from repro.index import IVFSQ8Index

N = 10**9
DIM = 128
NLIST = 16384
BATCHES = (1, 50, 100, 200, 300, 400, 500)


def run_figure(threshold=1000, nprobe=64):
    ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=threshold, nprobe=nprobe))
    rows = []
    for m in BATCHES:
        t = ex.model_times(m, n=N, dim=DIM, nlist=NLIST)
        rows.append((m, t["pure_cpu"], t["pure_gpu"], t["sq8h"]))
    return rows


def test_sq8h_fastest_everywhere():
    for __, cpu, gpu, sq8h in run_figure():
        assert sq8h <= min(cpu, gpu) + 1e-9


def test_gpu_slower_than_cpu_at_this_scale():
    """Paper: 'GPU SQ8 is slower than CPU SQ8 due to the data transfer'."""
    for __, cpu, gpu, ___ in run_figure():
        assert gpu > cpu


def test_gap_narrows_with_batch():
    rows = run_figure()
    ratios = [gpu / cpu for __, cpu, gpu, ___ in rows]
    assert ratios[-1] < ratios[0]


def test_threshold_ablation():
    """Above the threshold the batched-GPU branch must be the winner,
    otherwise the threshold is mis-set — the design choice the paper
    justifies with 'GPU outperforms CPU only if the batch is large'."""
    ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=1000, nprobe=64))
    big = 4000
    t = ex.model_times(big, n=N, dim=DIM, nlist=NLIST)
    assert t["sq8h"] < t["pure_cpu"]  # the GPU branch pays off past the threshold


def test_real_mode_switch():
    data = sift_like(800, dim=16, seed=0)
    index = IVFSQ8Index(16, nlist=8, seed=0)
    index.train(data)
    index.add(data)
    ex = SQ8HExecutor(index=index, config=SQ8HConfig(batch_threshold=8, nprobe=8))
    ex.search(data[:2], 5)
    assert ex.last_plan.mode == "hybrid"
    ex.search(data[:16], 5)
    assert ex.last_plan.mode == "gpu"


def test_benchmark_sq8h_real_search(benchmark):
    data = sift_like(4000, dim=32, seed=0)
    index = IVFSQ8Index(32, nlist=32, seed=0)
    index.train(data)
    index.add(data)
    ex = SQ8HExecutor(index=index, config=SQ8HConfig(batch_threshold=1000, nprobe=8))
    benchmark(lambda: ex.search(data[:64], 10))


def main():
    print(f"=== Figure 13: modeled, n={N:.0e}, d={DIM}, nlist={NLIST}, nprobe=64 ===")
    rows = run_figure()
    print_series("pure CPU", [m for m, *__ in rows], [f"{t:.2f}s" for __, t, *___ in rows])
    print_series("pure GPU", [m for m, *__ in rows], [f"{t:.2f}s" for __, ___, t, ____ in rows])
    print_series("SQ8H", [m for m, *__ in rows], [f"{t:.2f}s" for *__, t in rows])
    print("--- ablation: batch threshold ---")
    ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=1000, nprobe=64))
    for m in (500, 1000, 2000, 4000):
        t = ex.model_times(m, n=N, dim=DIM, nlist=NLIST)
        plan = ex.model_plan(m, n=N, dim=DIM, nlist=NLIST)
        print(f"batch={m}: mode={plan.mode} sq8h={t['sq8h']:.2f}s cpu={t['pure_cpu']:.2f}s")


if __name__ == "__main__":
    main()
