"""Table 1: system feature comparison.

Regenerates the paper's feature matrix from live capability probes of
each engine class built in this repo.  The benchmark measures each
engine's fit cost on the shared workload (the "system readiness" cost
behind the matrix).
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CAPABILITY_KEYS,
    LibraryStyleEngine,
    MilvusEngine,
    RelationalVectorEngine,
    SPTAGLikeEngine,
    VearchLikeEngine,
)
from repro.bench import print_table

from common import attribute_bundle

#: engine factory per Table 1 row (paper row -> architectural stand-in).
ENGINES = {
    "Faiss (library)": lambda: LibraryStyleEngine(nlist=64),
    "SPTAG (tree)": lambda: SPTAGLikeEngine(n_trees=8),
    "Vearch (service)": lambda: VearchLikeEngine(nlist=64),
    "AnalyticDB-V/PASE (relational)": lambda: RelationalVectorEngine(use_index=True),
    "Milvus (this repro)": lambda: MilvusEngine(nlist=64),
}


def build_feature_matrix():
    headers = ["System"] + [key.replace("_", " ") for key in CAPABILITY_KEYS]
    rows = []
    for name, factory in ENGINES.items():
        rows.append([name, *factory().capability_row()])
    return headers, rows


def test_milvus_row_is_all_yes():
    __, rows = build_feature_matrix()
    milvus_row = next(r for r in rows if r[0].startswith("Milvus"))
    assert all(cell == "yes" for cell in milvus_row[1:])


def test_every_baseline_misses_something():
    __, rows = build_feature_matrix()
    for row in rows:
        if row[0].startswith("Milvus"):
            continue
        assert "no" in row[1:], f"{row[0]} should lack at least one feature"


@pytest.mark.parametrize("name", list(ENGINES))
def test_fit_cost(benchmark, name):
    data, attrs, __ = attribute_bundle()
    subset = data[:4000]

    def fit():
        engine = ENGINES[name]()
        engine.fit(subset, attrs[:4000])
        return engine

    engine = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert engine.memory_bytes() > 0


def main():
    headers, rows = build_feature_matrix()
    print_table(headers, rows, title="Table 1: system comparison (live capability probes)")


if __name__ == "__main__":
    main()
