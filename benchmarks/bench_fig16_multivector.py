"""Figure 16: multi-vector query processing.

Paper setup: Recipe1M (text vector + image vector per entity), 10000
queries, k=50, weighted-sum aggregation, IVF_FLAT per field.

(a) Euclidean distance: NRA-50 / NRA-2048 (shallow one-shot NRA)
    vs iterative merging (IMG) with several k' settings.  Expected:
    NRA-50 fast but recall ~0.1-0.3; NRA-2048 slow with moderate
    recall; IMG both faster and more accurate (paper: 15x over
    NRA-2048 at similar recall).

(b) Inner product: IMG vs vector fusion.  Expected: fusion 3.4x-5.8x
    faster at equal-or-better recall (single top-k search).

Plus the DESIGN.md ablation: k'-doubling vs fixed k'.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.datasets import recipe_like
from repro.multivector import (
    IterativeMerging,
    RankedList,
    VectorFusion,
    nra_best_effort_topk,
)

N = 8000
K = 10
NQ = 30
WEIGHTS = {"image": 1.0, "text": 1.0}

_cache = {}


def setup():
    if "bundle" not in _cache:
        # Weak modality correlation, like real Recipe1M text vs image
        # embeddings — this is what makes shallow per-field lists miss
        # aggregated winners (the paper's recall-0.1 NRA-50 point).
        entities = recipe_like(N, text_dim=48, image_dim=32, correlation=0.4, seed=0)
        rng = np.random.default_rng(1)
        picks = rng.integers(N, size=NQ)
        # Jittered queries (not exact rows): real queries are new
        # recipes, so neither modality list is anchored by an exact hit.
        queries = [
            {
                "text": entities["text"][p]
                + rng.normal(0, 0.08, entities["text"].shape[1]).astype(np.float32),
                "image": entities["image"][p]
                + rng.normal(0, 0.08, entities["image"].shape[1]).astype(np.float32),
            }
            for p in picks
        ]
        truth_l2 = []
        truth_ip = []
        for q in queries:
            agg_l2 = (((entities["text"] - q["text"]) ** 2).sum(axis=1)
                      + ((entities["image"] - q["image"]) ** 2).sum(axis=1))
            truth_l2.append(set(np.argsort(agg_l2, kind="stable")[:K].tolist()))
            agg_ip = entities["text"] @ q["text"] + entities["image"] @ q["image"]
            truth_ip.append(set(np.argsort(-agg_ip, kind="stable")[:K].tolist()))
        _cache["bundle"] = (entities, queries, truth_l2, truth_ip)
    return _cache["bundle"]


def _recall(found_sets, truth_sets):
    return float(np.mean([
        len(f & t) / len(t) for f, t in zip(found_sets, truth_sets)
    ]))


def _shared_merger(entities, metric):
    """One set of per-field IVF indexes shared by NRA-d and IMG, so the
    comparison isolates the *algorithm* (the paper's setup: both issue
    VectorQuery(q.v_i, D_i, k') against the same indexes)."""
    key = ("merger", metric)
    if key not in _cache:
        _cache[key] = IterativeMerging.over_arrays(
            entities, metric=metric, weights=WEIGHTS,
            index_type="IVF_FLAT", k_threshold=2048,
            nlist=64, search_params={"nprobe": 16},
        )
    return _cache[key]


def _nra_oneshot(entities, queries, depth):
    """NRA-<depth>: one shot over per-field top-<depth> index queries."""
    merger = _shared_merger(entities, "l2")
    found = []
    started = time.perf_counter()
    for q in queries:
        lists = []
        for f in ("text", "image"):
            ids, raw = merger.query_fn(f, np.asarray(q[f], dtype=np.float32), depth)
            lists.append(RankedList.from_metric_scores(ids, raw, False, WEIGHTS[f]))
        hits = nra_best_effort_topk(lists, K)
        found.append({i for i, __ in hits})
    elapsed = time.perf_counter() - started
    return found, len(queries) / elapsed


def _nra_streaming(entities, queries, max_depth):
    """Faithful streaming NRA: sorted access only, one getNext() at a
    time — and because vector indexes "do not support getNext()
    efficiently, a full search is required to get the next result"
    (Sec. 4.2).  Every access therefore re-issues a top-(i+1) query.
    This is the expensive baseline iterative merging replaces.
    """
    from repro.multivector import streaming_nra

    merger = _shared_merger(entities, "l2")
    found = []
    started = time.perf_counter()
    for q in queries:
        # Materialize lists access-by-access, paying a fresh vector
        # query per getNext, then run depth-by-depth NRA bookkeeping.
        lists = []
        for f in ("text", "image"):
            ids_acc, raw_acc = [], []
            for depth in range(1, max_depth + 1):
                ids, raw = merger.query_fn(
                    f, np.asarray(q[f], dtype=np.float32), depth
                )
                if len(ids) < depth:
                    break
                ids_acc.append(ids[depth - 1])
                raw_acc.append(raw[depth - 1])
            lists.append(RankedList.from_metric_scores(
                np.array(ids_acc, dtype=np.int64), np.array(raw_acc),
                False, WEIGHTS[f],
            ))
        hits, __ = streaming_nra(lists, K)
        found.append({i for i, __s in hits})
    elapsed = time.perf_counter() - started
    return found, len(queries) / elapsed


def _img(entities, queries, metric, k_threshold, index_type="IVF_FLAT"):
    merger = IterativeMerging.over_arrays(
        entities, metric=metric, weights=WEIGHTS,
        index_type=index_type, k_threshold=k_threshold,
        nlist=64, search_params={"nprobe": 16},
    )
    found = []
    started = time.perf_counter()
    for q in queries:
        hits = merger.search_one(q, K)
        found.append({i for i, __ in hits})
    elapsed = time.perf_counter() - started
    return found, len(queries) / elapsed


def run_figure_a():
    entities, queries, truth_l2, __ = setup()
    rows = {}
    for depth in (K, 256):
        found, qps = _nra_oneshot(entities, queries, depth)
        rows[f"NRA-list-{depth}"] = (_recall(found, truth_l2), qps)
    found, qps = _nra_streaming(entities, queries[:10], 48)
    rows["NRA-stream-48"] = (_recall(found, truth_l2[:10]), qps)
    for k_threshold in (512, 2048):
        found, qps = _img(entities, queries, "l2", k_threshold)
        rows[f"IMG-{k_threshold}"] = (_recall(found, truth_l2), qps)
    return rows


def run_figure_b():
    entities, queries, __, truth_ip = setup()
    rows = {}
    found, qps = _img(entities, queries, "ip", 1024)
    rows["IMG-1024"] = (_recall(found, truth_ip), qps)

    fusion = VectorFusion(entities, metric="ip", weights=WEIGHTS,
                          index_type="IVF_FLAT", nlist=64)
    found = []
    started = time.perf_counter()
    for q in queries:
        hits = fusion.search(q, K, nprobe=16)[0]
        found.append({i for i, __ in hits})
    elapsed = time.perf_counter() - started
    rows["vector fusion"] = (_recall(found, truth_ip), len(queries) / elapsed)
    return rows


@pytest.fixture(scope="module")
def fig_a():
    return run_figure_a()


@pytest.fixture(scope="module")
def fig_b():
    return run_figure_b()


def test_shallow_nra_low_recall(fig_a):
    """Paper: 'NRA-50 is fast but the recall is only 0.1'.  At k=10 on
    laptop-scale data the shallow merge is less catastrophic, but it
    must trail the deep variants decisively."""
    shallow = fig_a[f"NRA-list-{K}"][0]
    assert shallow < 0.85
    assert shallow < fig_a["IMG-2048"][0] - 0.1


def test_img_beats_deep_nra(fig_a):
    """Paper: IMG 15x faster than NRA-2048 at similar recall."""
    nra_recall, nra_qps = fig_a["NRA-list-256"]
    img_recall, img_qps = fig_a["IMG-2048"]
    assert img_recall >= nra_recall - 0.05
    assert img_recall > fig_a[f"NRA-list-{K}"][0]


def test_img_much_faster_than_streaming_nra(fig_a):
    """The paper's core Fig. 16a claim: real (getNext-based) NRA is an
    order of magnitude slower than iterative merging."""
    stream_recall, stream_qps = fig_a["NRA-stream-48"]
    img_recall, img_qps = fig_a["IMG-2048"]
    # Paper: 15x at their scale; our streaming baseline is depth-capped
    # (flattering it) and IMG throughput varies ~30% run to run, so
    # require a decisive but noise-tolerant 3x.
    assert img_qps > 3 * stream_qps
    assert img_recall >= stream_recall - 0.05


def test_img_recall_grows_with_threshold(fig_a):
    assert fig_a["IMG-2048"][0] >= fig_a["IMG-512"][0] - 0.02


def test_fusion_faster_than_img(fig_b):
    """Paper: fusion is 3.4x-5.8x faster than IMG on inner product."""
    img_recall, img_qps = fig_b["IMG-1024"]
    fus_recall, fus_qps = fig_b["vector fusion"]
    assert fus_qps > 1.5 * img_qps
    assert fus_recall >= img_recall - 0.1


def test_ablation_fixed_kprime_vs_doubling():
    """DESIGN.md ablation: doubling k' adapts per query; a fixed large
    k' pays the worst case on every query."""
    entities, queries, truth_l2, __ = setup()
    # Fixed k' = threshold on round one: threshold just above k forces
    # a single fixed round at k'=k (cheap, low recall ceiling).
    found_fixed, qps_fixed = _img(entities, queries[:10], "l2", K + 1)
    found_doubling, qps_doubling = _img(entities, queries[:10], "l2", 2048)
    assert _recall(found_doubling, truth_l2[:10]) >= _recall(found_fixed, truth_l2[:10])


def test_benchmark_img(benchmark):
    entities, queries, *_ = setup()
    merger = IterativeMerging.over_arrays(
        entities, metric="l2", weights=WEIGHTS, index_type="IVF_FLAT",
        k_threshold=1024, nlist=64, search_params={"nprobe": 16},
    )
    benchmark(lambda: merger.search_one(queries[0], K))


def test_benchmark_fusion(benchmark):
    entities, queries, *_ = setup()
    fusion = VectorFusion(entities, metric="ip", weights=WEIGHTS,
                          index_type="IVF_FLAT", nlist=64)
    benchmark(lambda: fusion.search(queries[0], K, nprobe=16))


def main():
    print(f"=== Figure 16a: Euclidean, n={N}, k={K} ===")
    for name, (recall, qps) in run_figure_a().items():
        print(f"  {name:12s} recall={recall:.3f}  {qps:8.1f} qps")
    print(f"=== Figure 16b: inner product ===")
    for name, (recall, qps) in run_figure_b().items():
        print(f"  {name:14s} recall={recall:.3f}  {qps:8.1f} qps")


if __name__ == "__main__":
    main()
