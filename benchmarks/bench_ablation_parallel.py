"""Ablation: pooled intra-query parallelism (serial vs 1-8 workers).

Multi-segment brute-force search is the workload where intra-query
parallelism pays: every visible segment must be scanned (one GEMM per
segment via the norm-cached L2 expansion), and the per-segment scans
are independent.  The sweep compares the serial read path against the
pooled executor at growing pool sizes, asserting along the way that
pooled results stay bit-identical to serial ones.

Speedup scales with physical cores (the pool's threads overlap only
because the BLAS kernels release the GIL); on a single-core CI runner
the pooled path merely has to stay close to serial, which is what the
pytest assertions check.  ``main()`` prints the paper-style series and
writes ``BENCH_parallel.json``.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.bench import emit_bench_json, measure_throughput, print_series
from repro.datasets import random_queries, sift_like
from repro.exec import shutdown_pool
from repro.obs.profile import QueryProfile
from repro.storage import LSMConfig, LSMManager

DIM = 64
SEGMENTS = 8
ROWS_PER_SEGMENT = 2500
NUM_QUERIES = 50
K = 10
POOL_SIZES = (1, 2, 4, 8)

SPECS = {"emb": (DIM, "l2")}


def build_lsm():
    """SEGMENTS brute-force segments (indexing and merging disabled)."""
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        auto_merge=False,
    )
    lsm = LSMManager(SPECS, (), cfg)
    data = sift_like(SEGMENTS * ROWS_PER_SEGMENT, dim=DIM, n_clusters=64, seed=0)
    for b in range(SEGMENTS):
        sl = slice(b * ROWS_PER_SEGMENT, (b + 1) * ROWS_PER_SEGMENT)
        lsm.insert(np.arange(sl.start, sl.stop), {"emb": data[sl]})
        lsm.flush()
    queries = random_queries(data, NUM_QUERIES, seed=1)
    return lsm, queries


def _profiled_counters(fn) -> dict:
    """Work counters of one profiled run of ``fn`` (outside the timed
    window, so profiling overhead never skews the qps numbers)."""
    with QueryProfile("bench") as prof:
        fn()
    return prof.total_counters()


def run_sweep():
    """Returns (rows, identical): per-mode QPS + counters plus the
    equivalence bit."""
    lsm, queries = build_lsm()
    reference = lsm.search("emb", queries, K, parallel=False)
    lsm.search("emb", queries, K, parallel=False)  # warm the norm caches
    rows = [(
        "serial",
        0,
        measure_throughput(
            lambda q: lsm.search("emb", q, K, parallel=False),
            queries, repeats=3,
        ),
        _profiled_counters(lambda: lsm.search("emb", queries, K, parallel=False)),
    )]
    identical = True
    for size in POOL_SIZES:
        result = lsm.search("emb", queries, K, parallel=True, pool_size=size)
        identical = identical and (
            np.array_equal(result.ids, reference.ids)
            and np.array_equal(result.scores, reference.scores)
        )
        rows.append((
            f"pool={size}",
            size,
            measure_throughput(
                lambda q, s=size: lsm.search("emb", q, K, parallel=True, pool_size=s),
                queries, repeats=3,
            ),
            _profiled_counters(
                lambda s=size: lsm.search("emb", queries, K, parallel=True, pool_size=s)
            ),
        ))
    shutdown_pool()
    return rows, identical


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_parallel_bit_identical_to_serial(sweep):
    __, identical = sweep
    assert identical


def test_pooled_throughput_sane(sweep):
    """Pooled must not collapse vs serial.  The >=1.5x speedup target
    at pool=4 needs >=4 physical cores; CI runners may have one, so the
    hard gate here is only 'no pathological overhead' — main() reports
    the actual speedup for multi-core runs."""
    rows, __ = sweep
    qps = {row[0]: row[2] for row in rows}
    assert qps["pool=4"] > 0.4 * qps["serial"]


def test_benchmark_search_serial(benchmark):
    lsm, queries = build_lsm()
    benchmark(lambda: lsm.search("emb", queries, K, parallel=False))


def test_benchmark_search_pool4(benchmark):
    lsm, queries = build_lsm()
    try:
        benchmark(lambda: lsm.search("emb", queries, K, parallel=True, pool_size=4))
    finally:
        shutdown_pool()


def main(out_path: str = "BENCH_parallel.json"):
    print("=== Ablation: pooled intra-query parallelism ===")
    print(f"  ({SEGMENTS} brute-force segments x {ROWS_PER_SEGMENT} rows, "
          f"dim={DIM}, {NUM_QUERIES} queries, cores={os.cpu_count()})")
    rows, identical = run_sweep()
    serial_qps = rows[0][2]
    labels = [row[0] for row in rows]
    speedups = [row[2] / serial_qps for row in rows]
    for (label, __, qps, ___), speedup in zip(rows, speedups):
        print(f"  {label:8s} {qps:8.1f} qps   speedup {speedup:4.2f}x")
    print_series("speedup vs serial", labels, [f"{s:.2f}" for s in speedups])
    print(f"  parallel bit-identical to serial: {identical}")
    emit_bench_json(
        "parallel",
        workload={
            "segments": SEGMENTS,
            "rows_per_segment": ROWS_PER_SEGMENT,
            "dim": DIM,
            "num_queries": NUM_QUERIES,
            "k": K,
            "cpu_count": os.cpu_count(),
        },
        series=[
            {"mode": label, "pool_size": size, "qps": qps,
             "speedup_vs_serial": qps / serial_qps, "counters": counters}
            for label, size, qps, counters in rows
        ],
        out_path=out_path,
        bit_identical=identical,
    )


if __name__ == "__main__":
    main(*sys.argv[1:])
