"""Figure 12: SIMD optimizations — AVX512 vs AVX2.

Reproduces the modeled kernel times across data sizes (paper: AVX512
roughly 1.5x faster than AVX2 on the Xeon), plus the runtime dispatch
mechanism: the same "binary" (kernel registry) linked against
different CPU flag sets selects different builds.
"""

from __future__ import annotations

import pytest

from repro.bench import print_series
from repro.hetero import CORE_I7_8700, XEON_PLATINUM_8269, SimdDispatcher
from repro.hetero.hardware import SIMDLevel
from repro.hetero.simd import simd_kernel_registry

BATCH = 1000
DIM = 128
SIZES = (10**3, 10**4, 10**5, 10**6, 10**7)


def run_figure():
    registry = simd_kernel_registry()
    avx2 = registry[("l2", SIMDLevel.AVX2)]
    avx512 = registry[("l2", SIMDLevel.AVX512)]
    rows = []
    for n in SIZES:
        rows.append((n, avx2.modeled_seconds(BATCH, n, DIM),
                     avx512.modeled_seconds(BATCH, n, DIM)))
    return rows


def test_avx512_ratio_is_paperlike():
    for __, t2, t5 in run_figure():
        assert t2 / t5 == pytest.approx(1.5, abs=0.05)


def test_dispatch_selects_per_cpu():
    assert SimdDispatcher.for_cpu(XEON_PLATINUM_8269).selected_level is SIMDLevel.AVX512
    assert SimdDispatcher.for_cpu(CORE_I7_8700).selected_level is SIMDLevel.AVX2


def test_benchmark_kernel_avx512_build(benchmark):
    """Real kernel call through the dispatcher (numpy arithmetic)."""
    import numpy as np

    dispatcher = SimdDispatcher.for_cpu(XEON_PLATINUM_8269)
    q = np.random.default_rng(0).normal(size=(64, DIM)).astype(np.float32)
    x = np.random.default_rng(1).normal(size=(4096, DIM)).astype(np.float32)
    benchmark(lambda: dispatcher.pairwise("l2", q, x))


def main():
    print(f"=== Figure 12: modeled kernel time, batch={BATCH}, d={DIM} ===")
    rows = run_figure()
    print_series("AVX2", [n for n, *__ in rows], [f"{t:.3f}s" for __, t, ___ in rows])
    print_series("AVX512", [n for n, *__ in rows], [f"{t:.3f}s" for __, ___, t in rows])
    for cpu in (CORE_I7_8700, XEON_PLATINUM_8269):
        d = SimdDispatcher.for_cpu(cpu)
        print(f"runtime dispatch on {cpu.name}: flags={cpu.simd_flags} "
              f"-> linked {d.selected_level.name} kernels")


if __name__ == "__main__":
    main()
