"""Shared setup for the figure/table benchmarks.

Every benchmark runs at laptop scale (see DESIGN.md §1 for the
substitution table); sizes are chosen so the full suite finishes in
minutes while preserving each figure's *shape*.  Run any module
directly (``python benchmarks/bench_fig8_ivf_systems.py``) to print
the paper-style series; run under ``pytest --benchmark-only`` for
timed measurements.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.datasets import (
    deep_like,
    exact_ground_truth,
    random_queries,
    sift_like,
    uniform_attributes,
)

# Scaled-down stand-ins for SIFT10M / Deep10M (paper Sec. 7.2).
SIFT_N = 20000
SIFT_DIM = 64
DEEP_N = 20000
DEEP_DIM = 48
NUM_QUERIES = 200
K = 10


@functools.lru_cache(maxsize=None)
def sift_bundle():
    """(data, queries, truth-l2) for the SIFT-like workload."""
    data = sift_like(SIFT_N, dim=SIFT_DIM, n_clusters=64, seed=0)
    queries = random_queries(data, NUM_QUERIES, seed=1)
    truth = exact_ground_truth(queries, data, K, "l2")
    return data, queries, truth


@functools.lru_cache(maxsize=None)
def deep_bundle():
    """(data, queries, truth-ip) for the Deep-like workload."""
    data = deep_like(DEEP_N, dim=DEEP_DIM, n_clusters=64, seed=2)
    queries = random_queries(data, NUM_QUERIES, seed=3)
    truth = exact_ground_truth(queries, data, K, "ip")
    return data, queries, truth


@functools.lru_cache(maxsize=None)
def attribute_bundle():
    """SIFT-like vectors + uniform attribute in [0, 10000] (Sec. 7.5)."""
    data, queries, truth = sift_bundle()
    attrs = uniform_attributes(len(data), 0, 10000, seed=4)
    return data, attrs, queries


def best_time(fn, repeats: int = 3) -> float:
    """Minimum wall-clock over ``repeats`` runs — robust to noise spikes
    on shared machines, which matters because several figure tests
    assert relative timings."""
    from repro.obs import Stopwatch

    best = float("inf")
    for __ in range(repeats):
        with Stopwatch() as sw:
            fn()
        best = min(best, sw.seconds)
    return best


def selectivity_to_range(selectivity: float, low=0.0, high=10000.0):
    """Paper Sec. 7.5: selectivity = fraction of entities *failing* C_A.

    Returns an attribute range passing (1 - selectivity) of the rows.
    """
    return low, low + (high - low) * (1.0 - selectivity)
