"""Figure 15: attribute filtering — Milvus vs other systems.

Paper: Milvus is 48.5x ~ 41299.5x faster than Systems A/B/C and
Vearch on filtered queries.  Here the architectural stand-ins run the
same selectivity sweep; expected shape: Milvus fastest at every
selectivity, the relational engines orders of magnitude behind.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import (
    MilvusEngine,
    RelationalVectorEngine,
    VearchLikeEngine,
)
from repro.bench import print_series

from common import attribute_bundle, selectivity_to_range

SELECTIVITIES = (0.0, 0.3, 0.7, 0.9, 0.99)
K = 10
NQ = 10

_cache = {}


def engines():
    if "engines" not in _cache:
        data, attrs, queries = attribute_bundle()
        built = {}
        milvus = MilvusEngine(nlist=64, filter_strategy="D")
        milvus.fit(data, attrs)
        built["Milvus"] = milvus
        vearch = VearchLikeEngine(nlist=64)
        vearch.fit(data, attrs)
        built["Vearch"] = vearch
        system_b = RelationalVectorEngine(use_index=False)
        system_b.fit(data, attrs)
        built["SystemB (relational scan)"] = system_b
        system_c = RelationalVectorEngine(use_index=True, nlist=64)
        system_c.fit(data, attrs)
        built["SystemC (relational+IVF)"] = system_c
        _cache["engines"] = (built, queries[:NQ], attrs)
    return _cache["engines"]


def run_figure():
    built, queries, __ = engines()
    results = {}
    for name, engine in built.items():
        engine.filtered_search(queries[:2], K, 0.0, 10000.0, nprobe=16)  # warm-up
        from common import best_time

        points = []
        for sel in SELECTIVITIES:
            lo, hi = selectivity_to_range(sel)
            elapsed = best_time(
                lambda: engine.filtered_search(queries, K, lo, hi, nprobe=16),
                repeats=2,
            ) / len(queries)
            points.append((sel, elapsed))
        results[name] = points
    return results


@pytest.fixture(scope="module")
def fig15():
    return run_figure()


def test_milvus_fastest_everywhere(fig15):
    """Milvus leads at every selectivity (within measurement noise
    against the Vearch class, whose algorithmic path converges with
    strategy C at low selectivity; the structural gap opens at high
    selectivity and against the relational engines)."""
    for i, sel in enumerate(SELECTIVITIES):
        milvus_t = fig15["Milvus"][i][1]
        for name, points in fig15.items():
            if name == "Milvus":
                continue
            assert milvus_t <= 1.25 * points[i][1], f"{name} beat Milvus at sel={sel}"
    # Mean over the sweep: strictly fastest.
    mean_milvus = np.mean([t for __, t in fig15["Milvus"]])
    for name, points in fig15.items():
        if name != "Milvus":
            assert mean_milvus < np.mean([t for __, t in points])


def test_milvus_wins_big_at_high_selectivity(fig15):
    """Where the cost-based/partitioned machinery matters most."""
    i = SELECTIVITIES.index(0.99)
    milvus_t = fig15["Milvus"][i][1]
    for name, points in fig15.items():
        if name != "Milvus":
            assert milvus_t < 0.5 * points[i][1]


def test_orders_of_magnitude_over_relational(fig15):
    """Paper: 48.5x ~ 41299.5x; we require >20x at the extremes."""
    for i in (0, len(SELECTIVITIES) - 1):
        ratio = fig15["SystemB (relational scan)"][i][1] / fig15["Milvus"][i][1]
        assert ratio > 20


def test_results_respect_filter(rng=None):
    built, queries, attrs = engines()
    lo, hi = selectivity_to_range(0.7)
    for engine in built.values():
        result = engine.filtered_search(queries, K, lo, hi, nprobe=16)
        hits = result.ids[result.ids >= 0]
        assert ((attrs[hits] >= lo) & (attrs[hits] <= hi)).all()


def test_benchmark_milvus_filtered(benchmark):
    built, queries, __ = engines()
    lo, hi = selectivity_to_range(0.5)
    benchmark(lambda: built["Milvus"].filtered_search(queries, K, lo, hi, nprobe=16))


def main():
    print("=== Figure 15: filtered search across systems ===")
    for name, points in run_figure().items():
        print_series(
            name,
            [f"sel={s}" for s, __ in points],
            [f"{t * 1000:.2f} ms/q" for __, t in points],
        )


if __name__ == "__main__":
    main()
