"""Ablation: categorical index structures — inverted lists vs bitmaps.

The paper's future-work feature (Sec. 2.1) implemented in this repo:
categorical attributes indexed by inverted lists or bitmaps.  This
bench sweeps value cardinality and shows the trade the auto heuristic
navigates: bitmaps are compact and compose fast at low cardinality;
inverted lists win on memory and lookup at high cardinality.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_table
from repro.storage.categorical import BitmapIndex, InvertedIndex

N_ROWS = 50000
LOOKUPS = 200


def build_and_measure(index_cls, codes, row_ids, query_codes):
    started = time.perf_counter()
    index = index_cls(codes, row_ids)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    for code in query_codes:
        index.rows_in([int(code), int(code) + 1])
    lookup_s = (time.perf_counter() - started) / len(query_codes)
    return build_s, lookup_s, index.memory_bytes()


def run_sweep():
    rng = np.random.default_rng(0)
    row_ids = np.arange(N_ROWS, dtype=np.int64)
    rows = []
    for cardinality in (4, 64, 1024):
        codes = rng.integers(0, cardinality, N_ROWS).astype(np.int64)
        query_codes = rng.integers(0, cardinality, LOOKUPS)
        for cls in (InvertedIndex, BitmapIndex):
            build_s, lookup_s, mem = build_and_measure(cls, codes, row_ids, query_codes)
            rows.append((cardinality, cls.__name__, build_s, lookup_s, mem))
    return rows


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def _pick(sweep, cardinality, cls_name):
    return next(r for r in sweep if r[0] == cardinality and r[1] == cls_name)


def test_structures_return_same_rows():
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 32, 5000).astype(np.int64)
    rows = np.arange(5000, dtype=np.int64)
    inv = InvertedIndex(codes, rows)
    bmp = BitmapIndex(codes, rows)
    for code in range(32):
        np.testing.assert_array_equal(inv.rows_equal(code), bmp.rows_equal(code))


def test_bitmap_memory_explodes_at_high_cardinality(sweep):
    """One bitset per distinct value: memory ~ cardinality * n/8."""
    low = _pick(sweep, 4, "BitmapIndex")[4]
    high = _pick(sweep, 1024, "BitmapIndex")[4]
    assert high > 10 * low


def test_inverted_memory_flat_across_cardinality(sweep):
    """Id lists partition the rows: total size ~ constant."""
    low = _pick(sweep, 4, "InvertedIndex")[4]
    high = _pick(sweep, 1024, "InvertedIndex")[4]
    assert high < 3 * low


def test_inverted_beats_bitmap_memory_at_high_cardinality(sweep):
    inv = _pick(sweep, 1024, "InvertedIndex")[4]
    bmp = _pick(sweep, 1024, "BitmapIndex")[4]
    assert inv < bmp


def test_benchmark_inverted_lookup(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 64, N_ROWS).astype(np.int64)
    index = InvertedIndex(codes, np.arange(N_ROWS, dtype=np.int64))
    benchmark(lambda: index.rows_in([3, 4, 5]))


def test_benchmark_bitmap_lookup(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 64, N_ROWS).astype(np.int64)
    index = BitmapIndex(codes, np.arange(N_ROWS, dtype=np.int64))
    benchmark(lambda: index.rows_in([3, 4, 5]))


def main():
    rows = run_sweep()
    print_table(
        ["cardinality", "structure", "build (s)", "lookup (ms)", "memory (KB)"],
        [
            (card, name, f"{b:.4f}", f"{l * 1000:.3f}", f"{mem / 1024:.0f}")
            for card, name, b, l, mem in rows
        ],
        title="Ablation: categorical index structures (50k rows)",
    )


if __name__ == "__main__":
    main()
