"""Ablation: Equation (1) query-block sizing vs naive fixed blocks.

DESIGN.md design-choice bench.  The paper sizes query blocks so that
queries + per-thread heaps exactly fill L3; this ablation compares the
modeled *memory traffic* (the quantity the optimization targets) for
fixed block sizes around the Equation (1) value:

* blocks below s — more data passes than necessary (wasted reuse);
* blocks above s — the block no longer fits, so reuse degrades back
  toward per-query streaming (cache thrash).

Equation (1)'s choice minimizes traffic, with a real measured
cross-check on the blocked executor.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.datasets import sift_like
from repro.hetero import CacheAwareSearcher, XEON_PLATINUM_8269, query_block_size

BATCH = 8000
DIM = 128
K = 400  # large-k heaps shrink Equation (1)'s s below the batch size
N = 10**7
_FLOAT = 4


def effective_passes(m, block, s_fit):
    """Full-data passes for a given block size.

    Blocks that fit stream the data once per block.  Oversize blocks
    overflow L3, and the competing query/heap working set interferes
    with data-line reuse: the classic thrash approximation keeps an
    effective reuse of ``s_fit^2 / block`` queries per data load, so
    traffic grows linearly in the oversubscription factor.
    """
    if block <= s_fit:
        return m / block
    effective_reuse = s_fit * s_fit / block
    return m / effective_reuse


def modeled_traffic(m, n, dim, block, s_fit):
    data_bytes = n * dim * _FLOAT
    return effective_passes(m, block, s_fit) * data_bytes


def run_sweep():
    cpu = XEON_PLATINUM_8269
    s_eq1 = query_block_size(cpu.l3_bytes, DIM, cpu.threads, K)
    s_eq1 = min(s_eq1, BATCH)
    candidates = [max(1, s_eq1 // 16), max(1, s_eq1 // 4), s_eq1,
                  min(BATCH, s_eq1 * 4) if s_eq1 * 4 > s_eq1 else s_eq1]
    # Always include an oversize candidate even when s_eq1 >= BATCH.
    oversize = s_eq1 * 4
    candidates = sorted({max(1, s_eq1 // 16), max(1, s_eq1 // 4), s_eq1, oversize})
    rows = [(b, modeled_traffic(BATCH, N, DIM, b, s_eq1)) for b in candidates]
    return s_eq1, rows


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_equation_one_minimizes_traffic(sweep):
    s_eq1, rows = sweep
    traffic = dict(rows)
    assert traffic[s_eq1] == min(traffic.values())


def test_too_small_blocks_more_traffic(sweep):
    s_eq1, rows = sweep
    traffic = dict(rows)
    assert traffic[max(1, s_eq1 // 16)] > traffic[s_eq1]


def test_oversize_blocks_more_traffic(sweep):
    s_eq1, rows = sweep
    traffic = dict(rows)
    assert traffic[s_eq1 * 4] > traffic[s_eq1]


def test_real_blocked_beats_tiny_blocks():
    """Measured cross-check: Equation (1)-sized blocks beat block=1."""
    data = sift_like(20000, dim=32, seed=0)
    queries = sift_like(512, dim=32, seed=9)
    searcher = CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269)
    searcher.search_cache_aware(queries[:32], K, threads=4)  # warm-up
    started = time.perf_counter()
    searcher.search_cache_aware(queries, K, threads=4, block_size=1)
    t_tiny = time.perf_counter() - started
    started = time.perf_counter()
    searcher.search_cache_aware(queries, K, threads=4)  # Equation (1)
    t_eq1 = time.perf_counter() - started
    assert t_eq1 < t_tiny


def test_benchmark_real_blocked_at_eq1(benchmark):
    data = sift_like(20000, dim=32, seed=0)
    queries = sift_like(256, dim=32, seed=9)
    searcher = CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269)
    benchmark(lambda: searcher.search_cache_aware(queries, K, threads=4))


def main():
    s_eq1, rows = run_sweep()
    print(f"=== Ablation: query block size (Equation (1) -> s={s_eq1}) ===")
    print_series(
        "modeled traffic",
        [b for b, __ in rows],
        [f"{t / 1e9:.1f} GB" for __, t in rows],
    )


if __name__ == "__main__":
    main()
