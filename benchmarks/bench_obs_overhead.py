"""Observability overhead gate: the same workload with obs on vs off.

The operational layer's contract (INTERNALS §19) is that turning
``REPRO_OBS=1`` on costs almost nothing: disabled call sites hit
shared null objects, enabled ones pay one registry/journal update per
*operation* (never per row or per distance evaluation).  This module
measures that claim on two surfaces and CI fails if enabling
observability costs more than :data:`OVERHEAD_BUDGET_PCT` of qps:

* ``kernel`` — the fig8 subset: ``MilvusEngine`` IVF_FLAT on the
  SIFT-like bundle, nprobe sweep.  Exercises the kernel-layer hooks
  (norm cache counters, heterogeneous dispatch).
* ``served`` — the embedded-server path: ``Collection.search`` over
  an LSM collection, where obs-on additionally builds a
  :class:`~repro.obs.profile.QueryProfile` per query batch, records
  per-collection usage, traces, and feeds the slow-query log.

Measurement design: every instrumented call site fetches the active
handle per call (``obs.get_obs()``), so one engine object can be timed
under either mode.  Samples are taken in *interleaved off/on pairs*
(order alternating per pair) against the same pre-built engine, and
each arm reports its fastest sample — machine-level drift (frequency
scaling, noisy CI neighbours) lands on both arms equally instead of on
whichever arm ran last.  Re-enabling reuses the original components,
so counters/journal/usage accumulate across on-samples and the proof
assertions can check the on-arm really observed.

Writes ``BENCH_obs_overhead.json`` (schema v1, see repro.bench.report).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.baselines import MilvusEngine
from repro.bench import emit_bench_json, print_table
from repro.core.schema import CollectionSchema, VectorField
from repro.core.server import MilvusLite
from repro.datasets import recall_at_k

from common import K, sift_bundle

#: CI fails when obs-on qps drops more than this vs obs-off (ISSUE 10).
OVERHEAD_BUDGET_PCT = 10.0

NPROBES = (4, 16)
#: interleaved off/on sample pairs per point; each arm keeps its best.
#: the true served-path overhead is ~3-6% against a 10% budget, so the
#: estimator needs enough pairs that sampling noise stays well inside
#: the remaining margin.
PAIRS = 9
#: back-to-back query-set sweeps inside one timed sample, so a sample
#: is long enough (tens of ms) for perf_counter deltas to be stable.
ROUNDS = 3

SERVED_ROWS = 6000
SERVED_QUERIES = 64


def _reenable(handle) -> None:
    """Turn obs back on with ``handle``'s original components, so
    state (registry, journal, usage) accumulates across on-samples."""
    obs.enable(
        registry=handle.registry, tracer=handle.tracer,
        slow_query_log=handle.slow_query_log, profiler=handle.profiler,
        events=handle.events, jobs=handle.jobs, health=handle.health,
        usage=handle.usage,
    )


def paired_qps(handle, num_queries: int, sample) -> dict:
    """Time ``sample()`` in interleaved off/on pairs -> qps per arm.

    Leaves observability enabled (with ``handle``'s components) on
    return.
    """
    best = {"off": float("inf"), "on": float("inf")}
    for pair in range(PAIRS):
        arms = ("off", "on") if pair % 2 == 0 else ("on", "off")
        for arm in arms:
            if arm == "on":
                _reenable(handle)
            else:
                obs.disable()
            started = time.perf_counter()
            sample()
            best[arm] = min(best[arm], time.perf_counter() - started)
    _reenable(handle)
    return {arm: ROUNDS * num_queries / t for arm, t in best.items()}


def run_kernel_surface(handle, bundle) -> list:
    """Fig8 subset: IVF_FLAT nprobe sweep through the kernel layer."""
    data, queries, truth = bundle
    engine = MilvusEngine(index_type="IVF_FLAT", metric="l2", nlist=128)
    engine.fit(data)
    engine.search(queries, K, nprobe=max(NPROBES))  # warm caches
    rows = []
    for nprobe in NPROBES:
        qps = paired_qps(handle, len(queries), lambda: [
            engine.search(queries, K, nprobe=nprobe) for _ in range(ROUNDS)
        ])
        # one verification search per arm: watching must not change results
        obs.disable()
        off_ids = engine.search(queries, K, nprobe=nprobe).ids
        _reenable(handle)
        on_ids = engine.search(queries, K, nprobe=nprobe).ids
        identical = bool(np.array_equal(off_ids, on_ids))
        for mode in ("off", "on"):
            rows.append({
                "surface": "kernel", "mode": mode, "nprobe": nprobe,
                "qps": qps[mode],
                "recall": recall_at_k(on_ids if mode == "on" else off_ids,
                                      truth),
                "counters": {"ids_identical": int(identical)},
            })
    return rows


def run_served_surface(handle, bundle) -> list:
    """Embedded-server path: Collection.search (profiles/usage/traces)."""
    data, queries, _ = bundle
    data = data[:SERVED_ROWS]
    queries = queries[:SERVED_QUERIES]
    server = MilvusLite()
    coll = server.create_collection(CollectionSchema(
        name="overhead",
        vector_fields=[VectorField("emb", data.shape[1], "l2")],
    ))
    coll.insert({"emb": data})  # under obs-on: metered + journaled
    coll.flush()
    coll.search("emb", queries, K)  # warm (1 usage-metered query)
    qps = paired_qps(handle, len(queries), lambda: [
        coll.search("emb", queries, K) for _ in range(ROUNDS)
    ])
    # proof each arm really ran in its mode: only on-samples may have
    # fed the usage meter and the event journal.
    usage = handle.usage.collection("overhead") or {}
    counters = {
        "usage_queries": int(usage.get("queries", 0)),
        "usage_inserts": int(usage.get("inserts", 0)),
        "journal_events": int(handle.events.last_seq()),
    }
    return [
        {"surface": "served", "mode": mode, "qps": qps[mode],
         "counters": counters}
        for mode in ("off", "on")
    ]


def run_comparison():
    # pop the env var so an ``REPRO_OBS=1`` CI environment cannot turn
    # the off-arm back on through ``get_obs()``'s env fallback.
    had = os.environ.pop("REPRO_OBS", None)
    handle = obs.enable()
    try:
        bundle = sift_bundle()
        series = run_kernel_surface(handle, bundle)
        series.extend(run_served_surface(handle, bundle))
        return series, overhead_by_point(series)
    finally:
        obs.disable()
        if had is not None:
            os.environ["REPRO_OBS"] = had


def overhead_by_point(series) -> dict:
    """{point-name: qps loss of obs-on vs obs-off, in percent}."""

    def ident(row):
        return tuple(sorted(
            (k, v) for k, v in row.items()
            if k not in ("mode", "qps", "recall", "counters")
        ))

    off = {ident(r): r["qps"] for r in series if r["mode"] == "off"}
    out = {}
    for row in series:
        if row["mode"] != "on":
            continue
        base = off[ident(row)]
        name = row["surface"]
        if "nprobe" in row:
            name += f"_nprobe{row['nprobe']}"
        out[name] = 100.0 * (base - row["qps"]) / base
    return out


# -- assertions on the gate -------------------------------------------------

@pytest.fixture(scope="module")
def comparison():
    return run_comparison()


def test_overhead_within_budget(comparison):
    _, overhead = comparison
    assert overhead, "no matched on/off points"
    worst = max(overhead.items(), key=lambda item: item[1])
    assert worst[1] <= OVERHEAD_BUDGET_PCT, (
        f"obs-on qps regressed {worst[1]:.1f}% at {worst[0]} "
        f"(budget {OVERHEAD_BUDGET_PCT}%)"
    )


def test_on_arm_really_observed(comparison):
    series, _ = comparison
    served = next(r for r in series
                  if r["surface"] == "served" and r["mode"] == "on")
    # exactly the warm search + the PAIRS on-samples of ROUNDS batches
    # land in usage; the interleaved off-samples must not.
    assert served["counters"]["usage_queries"] == 1 + PAIRS * ROUNDS
    assert served["counters"]["usage_inserts"] == 1
    assert served["counters"]["journal_events"] > 0  # freeze/flush/...


def test_observing_does_not_change_results(comparison):
    series, _ = comparison
    kernel_rows = [r for r in series if r["surface"] == "kernel"]
    assert kernel_rows
    assert all(r["counters"]["ids_identical"] == 1 for r in kernel_rows)
    for nprobe in NPROBES:
        recalls = {r["recall"] for r in kernel_rows
                   if r["nprobe"] == nprobe}
        assert len(recalls) == 1


# -- report -----------------------------------------------------------------

def main():
    print("== observability overhead: obs on vs off ==")
    series, overhead = run_comparison()
    print_table(
        ["surface", "mode", "nprobe", "qps", "recall"],
        [
            [r["surface"], r["mode"], r.get("nprobe", "-"),
             f"{r['qps']:.0f}",
             f"{r['recall']:.3f}" if "recall" in r else "-"]
            for r in series
        ],
        title=f"matched points (best of {PAIRS} interleaved pairs)",
    )
    print_table(
        ["point", "overhead %"],
        [[name, f"{pct:+.1f}"] for name, pct in sorted(overhead.items())],
        title=f"obs-on qps loss (budget {OVERHEAD_BUDGET_PCT:.0f}%)",
    )
    emit_bench_json(
        "obs_overhead",
        workload={
            "k": K, "nprobes": list(NPROBES), "pairs": PAIRS,
            "rounds": ROUNDS, "served_rows": SERVED_ROWS,
            "served_queries": SERVED_QUERIES,
            "budget_pct": OVERHEAD_BUDGET_PCT,
        },
        series=series,
        overhead_pct=overhead,
    )


if __name__ == "__main__":
    main()
