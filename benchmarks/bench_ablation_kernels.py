"""Ablation: quantized-scan kernels vs their naive reference scans.

Three micro-comparisons behind the Fig. 8 compressed-index curves,
measured at the kernel level (one bucket of codes, one query block):

* PQ ADC: naive per-query table gather (``ProductQuantizer.adc_scan``)
  vs the blocked flat-LUT kernel, swept over block sizes — the
  fast-scan trick of offsetting codes into one flat (nq, m*ksub)
  table and gathering whole blocks of subquantizers at once.
* SQ8: decode-then-pairwise (materialize float32 rows, then a metric
  pairwise) vs the decode-free affine kernel (one GEMM against the
  uint8 codes, norms folded in algebraically).

Both sweeps run over several bucket sizes because the win shifts with
the number of rows amortizing the per-bucket setup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import emit_bench_json, print_series
from repro.datasets import random_queries, sift_like
from repro.index import kernels
from repro.index.ivf_pq import ProductQuantizer
from repro.index.ivf_sq8 import ScalarQuantizer
from repro.metrics import get_metric

DIM = 64
NQ = 64
BUCKET_ROWS = (256, 1024, 4096)
PQ_BLOCKS = (1, 2, 4, 8)
PQ_M = 8
REPEATS = 3

_cache = {}


def setup():
    if "bundle" not in _cache:
        data = sift_like(8192, dim=DIM, n_clusters=32, seed=0)
        queries = random_queries(data, NQ, seed=1)
        pq = ProductQuantizer(DIM, m=PQ_M, nbits=8, seed=0).train(data)
        sq = ScalarQuantizer().train(data)
        _cache["bundle"] = (data, queries, pq, sq)
    return _cache["bundle"]


def _best(fn) -> float:
    best = float("inf")
    for __ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_pq_sweep():
    data, queries, pq, __ = setup()
    metric = get_metric("l2")
    tables = pq.build_tables(queries, metric.name)
    tables_flat = kernels.flatten_tables(tables)
    rows = []
    for nrows in BUCKET_ROWS:
        codes = pq.encode(data[:nrows])
        naive = _best(lambda: ProductQuantizer.adc_scan(tables, codes))
        entry = {"rows": nrows, "naive_seconds": naive}
        for block in PQ_BLOCKS:
            blocked = _best(
                lambda: kernels.adc_scan_blocked(
                    tables_flat, codes, pq.ksub, block=block))
            entry[f"block{block}_seconds"] = blocked
        rows.append(entry)
    return rows


def run_sq8_sweep():
    data, queries, __, sq = setup()
    metric = get_metric("l2")
    ctx = kernels.SQ8ScanContext(sq, queries, metric.name)
    rows = []
    for nrows in BUCKET_ROWS:
        codes = sq.encode(data[:nrows])
        naive = _best(lambda: metric.pairwise(queries, sq.decode(codes)))
        cold = _best(lambda: ctx.scan(codes))
        # The engine path: bucket-side cast/norm terms cached per
        # compacted bucket (CodeCache), so steady-state scans pay only
        # the GEMM + rank-one corrections.
        cache = kernels.CodeCache()
        ctx.scan(codes, cache=cache, cache_key=0)  # prime
        warm = _best(lambda: ctx.scan(codes, cache=cache, cache_key=0))
        rows.append({"rows": nrows, "naive_seconds": naive,
                     "cold_seconds": cold, "fused_seconds": warm})
    return rows


@pytest.fixture(scope="module")
def pq_sweep():
    return run_pq_sweep()


@pytest.fixture(scope="module")
def sq8_sweep():
    return run_sq8_sweep()


def test_pq_blocked_matches_naive():
    data, queries, pq, __ = setup()
    metric = get_metric("l2")
    tables = pq.build_tables(queries, metric.name)
    codes = pq.encode(data[:512])
    want = ProductQuantizer.adc_scan(tables, codes)
    got = kernels.adc_scan_blocked(
        kernels.flatten_tables(tables), codes, pq.ksub)
    np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


def test_pq_blocked_beats_naive_at_large_bucket(pq_sweep):
    entry = pq_sweep[-1]
    best_blocked = min(v for k, v in entry.items() if k.startswith("block"))
    assert best_blocked < entry["naive_seconds"]


def test_sq8_fused_beats_decode_at_large_bucket(sq8_sweep):
    entry = sq8_sweep[-1]
    assert entry["fused_seconds"] < entry["naive_seconds"]


def test_benchmark_pq_blocked(benchmark):
    data, queries, pq, __ = setup()
    tables_flat = kernels.flatten_tables(pq.build_tables(queries, "l2"))
    codes = pq.encode(data[:4096])
    benchmark(lambda: kernels.adc_scan_blocked(tables_flat, codes, pq.ksub))


def test_benchmark_sq8_fused(benchmark):
    data, queries, __, sq = setup()
    ctx = kernels.SQ8ScanContext(sq, queries, "l2")
    codes = sq.encode(data[:4096])
    cache = kernels.CodeCache()
    ctx.scan(codes, cache=cache, cache_key=0)
    benchmark(lambda: ctx.scan(codes, cache=cache, cache_key=0))


def main():
    pq_rows = run_pq_sweep()
    sq_rows = run_sq8_sweep()
    print("=== Ablation: quantized-scan kernels vs naive scans ===")
    print_series(
        "pq blocked (block=4) speedup over naive",
        [e["rows"] for e in pq_rows],
        [f"{e['naive_seconds'] / e['block4_seconds']:.2f}x" for e in pq_rows],
    )
    print_series(
        "sq8 decode-free (warm cache) speedup over decode+pairwise",
        [e["rows"] for e in sq_rows],
        [f"{e['naive_seconds'] / e['fused_seconds']:.2f}x" for e in sq_rows],
    )
    series = []
    for e in pq_rows:
        series.append({"kernel": "pq_adc", "variant": "naive",
                       "rows": e["rows"], "qps": NQ / e["naive_seconds"]})
        for block in PQ_BLOCKS:
            series.append({"kernel": "pq_adc", "variant": f"blocked{block}",
                           "rows": e["rows"],
                           "qps": NQ / e[f"block{block}_seconds"]})
    for e in sq_rows:
        series.append({"kernel": "sq8", "variant": "decode",
                       "rows": e["rows"], "qps": NQ / e["naive_seconds"]})
        series.append({"kernel": "sq8", "variant": "fused_cold",
                       "rows": e["rows"], "qps": NQ / e["cold_seconds"]})
        series.append({"kernel": "sq8", "variant": "fused",
                       "rows": e["rows"], "qps": NQ / e["fused_seconds"]})
    emit_bench_json(
        "ablation_kernels",
        workload={"dim": DIM, "nq": NQ, "pq_m": PQ_M,
                  "bucket_rows": list(BUCKET_ROWS), "metric": "l2"},
        series=series,
    )


if __name__ == "__main__":
    main()
