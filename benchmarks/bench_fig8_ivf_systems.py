"""Figure 8: recall-throughput on IVF (quantization) indexes.

Paper setup: SIFT10M / Deep10M, k=50, Milvus IVF_FLAT / IVF_SQ8 /
IVF_PQ against Vearch, SPTAG and commercial systems.  Here: SIFT-like
and Deep-like at laptop scale, k=10, with the architectural baselines.
Expected shape: Milvus dominates at every recall level; SPTAG-like
cannot reach the highest recall; the relational engine (System B/C
class) trails by orders of magnitude.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import (
    LibraryStyleEngine,
    MilvusEngine,
    RelationalVectorEngine,
    SPTAGLikeEngine,
    VearchLikeEngine,
)
from repro.bench import emit_bench_json, print_series
from repro.datasets import exact_ground_truth, recall_at_k
from repro.obs.profile import QueryProfile

from common import K, deep_bundle, sift_bundle

NPROBES = (1, 2, 4, 8, 16, 32)


def _curve(engine, queries, truth, param_name, values, nq=None):
    """Sweep one knob -> [(recall, qps)] points."""
    points = []
    q = queries if nq is None else queries[:nq]
    t = truth if nq is None else truth[:nq]
    for value in values:
        started = time.perf_counter()
        result = engine.search(q, K, **{param_name: value})
        elapsed = time.perf_counter() - started
        points.append((recall_at_k(result.ids, t), len(q) / elapsed))
    return points


def _counters(engine, queries, param_name, values):
    """Work counters per knob value (profiled outside timed windows)."""
    out = []
    for value in values:
        with QueryProfile("bench") as prof:
            engine.search(queries, K, **{param_name: value})
        out.append(prof.total_counters())
    return out


def run_figure(bundle, metric, with_counters=False):
    data, queries, truth = bundle
    curves = {}
    counters = {}

    milvus = MilvusEngine(index_type="IVF_FLAT", metric=metric, nlist=128)
    milvus.fit(data)
    curves["Milvus_IVF_FLAT"] = _curve(milvus, queries, truth, "nprobe", NPROBES)
    if with_counters:
        counters["Milvus_IVF_FLAT"] = _counters(milvus, queries, "nprobe", NPROBES)

    sq8 = MilvusEngine(index_type="IVF_SQ8", metric=metric, nlist=128)
    sq8.fit(data)
    curves["Milvus_IVF_SQ8"] = _curve(sq8, queries, truth, "nprobe", NPROBES)
    if with_counters:
        counters["Milvus_IVF_SQ8"] = _counters(sq8, queries, "nprobe", NPROBES)

    pq = MilvusEngine(index_type="IVF_PQ", metric=metric, nlist=128, m=8)
    pq.fit(data)
    curves["Milvus_IVF_PQ"] = _curve(pq, queries, truth, "nprobe", NPROBES)
    if with_counters:
        counters["Milvus_IVF_PQ"] = _counters(pq, queries, "nprobe", NPROBES)

    vearch = VearchLikeEngine(index_type="IVF_FLAT", metric=metric, nlist=128)
    vearch.fit(data)
    curves["Vearch"] = _curve(vearch, queries, truth, "nprobe", NPROBES)

    sptag = SPTAGLikeEngine(n_trees=10, leaf_size=48, metric=metric)
    sptag.fit(data)
    points = []
    for search_k in (200, 800, 2000, 6000):
        started = time.perf_counter()
        result = sptag.search(queries[:50], K, search_k=search_k)
        elapsed = time.perf_counter() - started
        points.append((recall_at_k(result.ids, truth[:50]), 50 / elapsed))
    curves["SPTAG"] = points

    system_b = RelationalVectorEngine(metric=metric, use_index=False)
    system_b.fit(data)
    started = time.perf_counter()
    result = system_b.search(queries[:5], K)
    elapsed = time.perf_counter() - started
    curves["SystemB (brute scan)"] = [(recall_at_k(result.ids, truth[:5]), 5 / elapsed)]

    system_c = RelationalVectorEngine(metric=metric, use_index=True, nlist=128)
    system_c.fit(data)
    points = []
    for nprobe in (4, 16, 64):
        started = time.perf_counter()
        result = system_c.search(queries[:10], K, nprobe=nprobe)
        elapsed = time.perf_counter() - started
        points.append((recall_at_k(result.ids, truth[:10]), 10 / elapsed))
    curves["SystemC (relational+IVF)"] = points
    if with_counters:
        return curves, counters
    return curves


# -- assertions on the figure's shape --------------------------------------

@pytest.fixture(scope="module")
def sift_curves():
    return run_figure(sift_bundle(), "l2")


def test_milvus_dominates_vearch(sift_curves):
    """At comparable recall, Milvus beats the Vearch-class engine."""
    m = {round(r, 1): q for r, q in sift_curves["Milvus_IVF_FLAT"]}
    v = {round(r, 1): q for r, q in sift_curves["Vearch"]}
    shared = set(m) & set(v)
    assert shared, "curves should overlap in recall"
    assert all(m[r] > v[r] for r in shared)


def test_milvus_orders_of_magnitude_over_relational(sift_curves):
    best_relational = max(q for __, q in sift_curves["SystemB (brute scan)"])
    milvus_high_recall = max(
        q for r, q in sift_curves["Milvus_IVF_FLAT"] if r >= 0.9
    )
    assert milvus_high_recall > 50 * best_relational


def test_milvus_reaches_high_recall(sift_curves):
    assert max(r for r, __ in sift_curves["Milvus_IVF_FLAT"]) >= 0.99


def test_sq8_tracks_flat_recall(sift_curves):
    flat_best = max(r for r, __ in sift_curves["Milvus_IVF_FLAT"])
    sq8_best = max(r for r, __ in sift_curves["Milvus_IVF_SQ8"])
    assert sq8_best >= flat_best - 0.02  # footnote 6: ~1% recall loss


def test_benchmark_milvus_ivf_flat(benchmark):
    data, queries, truth = sift_bundle()
    engine = MilvusEngine(index_type="IVF_FLAT", nlist=128)
    engine.fit(data)
    result = benchmark(lambda: engine.search(queries, K, nprobe=8))
    assert recall_at_k(result.ids, truth) > 0.8


def test_benchmark_vearch_like(benchmark):
    data, queries, truth = sift_bundle()
    engine = VearchLikeEngine(nlist=128)
    engine.fit(data)
    result = benchmark(lambda: engine.search(queries, K, nprobe=8))
    assert recall_at_k(result.ids, truth) > 0.8


def main():
    entries = []
    for name, dataset, bundle, metric in [
        ("SIFT-like (Fig. 8a)", "sift", sift_bundle(), "l2"),
        ("Deep-like (Fig. 8b)", "deep", deep_bundle(), "ip"),
    ]:
        print(f"=== Figure 8: {name}, k={K} ===")
        curves, counters = run_figure(bundle, metric, with_counters=True)
        for series, points in curves.items():
            print_series(
                series,
                [f"recall={r:.3f}" for r, __ in points],
                [f"{q:.0f} qps" for __, q in points],
            )
            for i, (recall, qps) in enumerate(points):
                entry = {
                    "dataset": dataset, "system": series, "point": i,
                    "recall": recall, "qps": qps,
                }
                if series in counters:
                    entry["counters"] = counters[series][i]
                entries.append(entry)
    emit_bench_json("fig8_ivf", workload={"k": K, "nprobes": list(NPROBES)},
                    series=entries)


if __name__ == "__main__":
    main()
