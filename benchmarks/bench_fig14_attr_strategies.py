"""Figure 14: attribute filtering strategies A-E in Milvus.

Paper setup: 100M SIFT vectors + uniform attribute in [0, 10000],
selectivities {0, .1, .3, .5, .7, .9, .95, .99}, two scenarios
(k=50/recall>=.95 and k=500/recall>=.85).  Here at laptop scale with
k=10 and k=100.  Expected shape: A speeds up as selectivity rises;
B flat; C worst at high selectivity; D tracks the best of A/B/C;
E at least as good as D once partitions prune (paper: up to 13.7x).
Includes the partition-count (rho) ablation from DESIGN.md.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import emit_bench_json, print_series
from repro.filtering import (
    AdaptivePlanner,
    AttributeFilterEngine,
    CalibratedCostModel,
    PartitionedFilterEngine,
)
from repro.index import create_index
from repro.obs.profile import QueryProfile

from common import attribute_bundle, selectivity_to_range

SELECTIVITIES = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99)
#: selectivities for the in-traversal-vs-post-filter graph comparison
#: (the extreme tail routes to strategy A, see the cost model)
GRAPH_SELECTIVITIES = (0.3, 0.5, 0.7, 0.9)
NPROBE = 16
NQ = 20

_cache = {}


def engines():
    if "engines" not in _cache:
        data, attrs, queries = attribute_bundle()
        engine = AttributeFilterEngine(data, attrs, metric="l2", nlist=64, seed=0)
        part = PartitionedFilterEngine(data, attrs, n_partitions=10, metric="l2", seed=0)
        _cache["engines"] = (engine, part, queries[:NQ])
    return _cache["engines"]


def graph_setup():
    """HNSW over the same bundle, for in-traversal filtered search."""
    if "graph" not in _cache:
        data, attrs, queries = attribute_bundle()
        hnsw = create_index(
            "HNSW", data.shape[1], metric="l2", M=16, ef_construction=100, seed=0
        )
        hnsw.add(data)
        _cache["graph"] = (data, attrs, queries[:NQ], hnsw)
    return _cache["graph"]


def run_filtered_graph(k=10):
    """In-traversal pushdown (B) vs vector-first post-filter (C) on HNSW.

    Both get the same traversal budget shape they would receive from
    the adaptive planner: B a fixed admissible-beam ``ef`` (the
    filter bitmap is computed once per batch, as the collection read
    path does), C the selectivity-aware over-fetch with widening.
    Recall is against the exact answer over the admissible subset.
    """
    from common import best_time

    data, attrs, queries, hnsw = graph_setup()
    n = len(data)
    planner = AdaptivePlanner()
    out = {"B_hnsw": [], "C_hnsw": []}

    def post_filter_c(lo, hi, p, ok):
        fetch0 = max(int(np.ceil(planner.theta * k / max(p, 1e-9))), k)
        rows = []
        for q in queries:
            fetch = fetch0
            while True:
                fetch_eff = min(fetch, n)
                r = hnsw.search(q[None], fetch_eff, ef=max(64, fetch_eff))
                ids = r.ids[0]
                ids = ids[ids >= 0]
                keep = ids[ok[ids]]
                if len(keep) >= k or fetch_eff >= n:
                    break
                fetch *= 2
            rows.append(keep[:k])
        return rows

    for sel in GRAPH_SELECTIVITIES:
        lo, hi = selectivity_to_range(sel)
        p = 1.0 - sel
        ok = (attrs >= lo) & (attrs <= hi)
        allowed = np.flatnonzero(ok).astype(np.int64)
        ef = planner.select_ef(k, p)
        d = ((data[allowed][None, :, :] - queries[:, None, :]) ** 2).sum(-1)
        exact = allowed[np.argsort(d, axis=1, kind="stable")[:, :k]]

        t_b = best_time(
            lambda: hnsw.search(queries, k, ef=ef, row_filter=allowed), repeats=2
        ) / len(queries)
        b_ids = hnsw.search(queries, k, ef=ef, row_filter=allowed).ids
        recall_b = float(np.mean([
            len(set(row[row >= 0].tolist()) & set(truth.tolist())) / k
            for row, truth in zip(b_ids, exact)
        ]))

        t_c = best_time(lambda: post_filter_c(lo, hi, p, ok), repeats=2) / len(queries)
        c_rows = post_filter_c(lo, hi, p, ok)
        recall_c = float(np.mean([
            len(set(row.tolist()) & set(truth.tolist())) / k
            for row, truth in zip(c_rows, exact)
        ]))

        out["B_hnsw"].append((sel, t_b, recall_b))
        out["C_hnsw"].append((sel, t_c, recall_c))
    return out


def run_adaptive(k=10, warm_rounds=3):
    """Calibrated strategy D: latency per selectivity after warm-up."""
    from common import best_time

    data, attrs, queries = attribute_bundle()
    engine = AttributeFilterEngine(
        data, attrs, metric="l2", nlist=64, seed=0,
        cost_model=CalibratedCostModel(),
    )
    points = []
    for sel in SELECTIVITIES:
        lo, hi = selectivity_to_range(sel)
        for __ in range(warm_rounds):  # feed the calibrator
            for q in queries[:5]:
                engine.strategy_d(q, lo, hi, k, nprobe=NPROBE)
        elapsed = best_time(
            lambda: [engine.strategy_d(q, lo, hi, k, nprobe=NPROBE)
                     for q in queries[:NQ]],
            repeats=2,
        ) / NQ
        points.append((sel, elapsed))
    return points


def run_figure(k):
    engine, part, queries = engines()
    strategies = {
        "A": lambda q, lo, hi: engine.strategy_a(q, lo, hi, k),
        "B": lambda q, lo, hi: engine.strategy_b(q, lo, hi, k, nprobe=NPROBE),
        "C": lambda q, lo, hi: engine.strategy_c(q, lo, hi, k, nprobe=NPROBE),
        "D": lambda q, lo, hi: engine.strategy_d(q, lo, hi, k, nprobe=NPROBE),
        "E": lambda q, lo, hi: part.search(q, lo, hi, k, nprobe=NPROBE),
    }
    from common import best_time

    results = {name: [] for name in strategies}
    for sel in SELECTIVITIES:
        lo, hi = selectivity_to_range(sel)
        for name, fn in strategies.items():
            elapsed = best_time(
                lambda: [fn(q, lo, hi) for q in queries], repeats=2
            ) / len(queries)
            results[name].append((sel, elapsed))
    return results


@pytest.fixture(scope="module")
def fig14():
    return run_figure(k=10)


def test_strategy_a_speeds_up_with_selectivity(fig14):
    times = [t for __, t in fig14["A"]]
    assert times[-1] < times[0] / 5


def test_strategy_c_degrades_at_high_selectivity(fig14):
    times = dict(fig14["C"])
    assert times[0.99] > times[0.0]


def test_d_never_much_worse_than_best_single(fig14):
    for i, sel in enumerate(SELECTIVITIES):
        best = min(fig14[s][i][1] for s in "ABC")
        assert fig14["D"][i][1] <= 3.0 * best


def test_e_wins_in_the_pruning_regime(fig14):
    """Partition pruning pays off once ranges are narrow enough to
    skip partitions but wide enough that exact strategy A is not
    already optimal (the paper's 13.7x shows at 100M rows where A is
    never cheap; at laptop scale A wins the extreme tail — see
    EXPERIMENTS.md)."""
    d_times = dict(fig14["D"])
    e_times = dict(fig14["E"])
    midrange = (0.3, 0.5, 0.7, 0.9)
    wins = [s for s in midrange if e_times[s] < d_times[s]]
    assert wins, "E should beat D somewhere in the mid-range"
    mean_e = np.mean([e_times[s] for s in midrange])
    mean_d = np.mean([d_times[s] for s in midrange])
    # E carries per-partition dispatch overhead at this scale; it must
    # stay within a small constant of D while winning where ranges
    # prune partitions (0.7+).
    assert mean_e <= 1.6 * mean_d
    # At the extreme tail E stays within small-constant overhead of D.
    assert e_times[0.99] <= 6.0 * d_times[0.99]


@pytest.fixture(scope="module")
def graph14():
    return run_filtered_graph(k=10)


def test_in_traversal_beats_post_filter_mid_selectivity(graph14):
    """Acceptance gate: pushdown B wins on mid-selectivity HNSW queries."""
    b = dict((s, t) for s, t, __ in graph14["B_hnsw"])
    c = dict((s, t) for s, t, __ in graph14["C_hnsw"])
    mid = (0.3, 0.5)
    assert np.mean([b[s] for s in mid]) < np.mean([c[s] for s in mid])


def test_in_traversal_recall_within_one_percent(graph14):
    """Acceptance gate: B recall within 1% of exact over the filter."""
    for __, ___, recall in graph14["B_hnsw"]:
        assert recall >= 0.99


def test_partition_count_ablation():
    """DESIGN.md ablation: rho too small -> no pruning; too large ->
    per-partition indexes degenerate.  The sweet spot is in between."""
    data, attrs, queries = attribute_bundle()
    lo, hi = selectivity_to_range(0.9)
    timings = {}
    for rho in (2, 10, 50):
        part = PartitionedFilterEngine(data, attrs, n_partitions=rho, seed=0)
        started = time.perf_counter()
        for q in queries[:10]:
            part.search(q, lo, hi, 10, nprobe=NPROBE)
        timings[rho] = time.perf_counter() - started
    assert timings[10] <= timings[2] * 1.5  # pruning compensates its overhead


def test_benchmark_strategy_d(benchmark):
    engine, __, queries = engines()
    lo, hi = selectivity_to_range(0.5)
    benchmark(lambda: [engine.strategy_d(q, lo, hi, 10, nprobe=NPROBE) for q in queries[:5]])


def test_benchmark_strategy_e(benchmark):
    __, part, queries = engines()
    lo, hi = selectivity_to_range(0.5)
    benchmark(lambda: [part.search(q, lo, hi, 10, nprobe=NPROBE) for q in queries[:5]])


def main():
    entries = []
    engine, __, queries = engines()
    for k, label in [(10, "Fig. 14a (k=10 scaled from k=50)"),
                     (100, "Fig. 14b (k=100 scaled from k=500)")]:
        print(f"=== {label} ===")
        results = run_figure(k)
        for name, points in results.items():
            print_series(
                f"strategy {name}",
                [f"sel={s}" for s, __ in points],
                [f"{t * 1000:.2f} ms/q" for __, t in points],
            )
            for sel, latency in points:
                entry = {
                    "k": k, "strategy": name, "selectivity": sel,
                    "latency_seconds": latency,
                }
                if name == "D":
                    lo, hi = selectivity_to_range(sel)
                    with QueryProfile("bench") as prof:
                        engine.strategy_d(queries[0], lo, hi, k, nprobe=NPROBE)
                    entry["counters"] = prof.total_counters()
                entries.append(entry)
    print("=== in-traversal pushdown vs post-filter (HNSW, k=10) ===")
    graph = run_filtered_graph(k=10)
    for name, points in graph.items():
        print_series(
            name,
            [f"sel={s}" for s, __, ___ in points],
            [f"{t * 1000:.2f} ms/q r={r:.3f}" for __, t, r in points],
        )
        for sel, latency, recall in points:
            entries.append({
                "k": 10, "strategy": name, "selectivity": sel, "index": "HNSW",
                "latency_seconds": latency, "recall": recall,
            })
    print("=== calibrated strategy D (k=10, warmed) ===")
    adaptive = run_adaptive(k=10)
    print_series(
        "D_cal",
        [f"sel={s}" for s, __ in adaptive],
        [f"{t * 1000:.2f} ms/q" for __, t in adaptive],
    )
    for sel, latency in adaptive:
        entries.append({
            "k": 10, "strategy": "D_cal", "selectivity": sel,
            "latency_seconds": latency,
        })
    emit_bench_json(
        "fig14_attr_strategies",
        workload={"selectivities": list(SELECTIVITIES), "nprobe": NPROBE, "nq": NQ},
        series=entries,
    )


if __name__ == "__main__":
    main()
