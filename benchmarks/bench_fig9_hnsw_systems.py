"""Figure 9: recall-throughput on the HNSW index.

Paper: Milvus vs System A / Vearch / System C, all running HNSW.
Differences between systems are architectural (batch execution vs
per-query request paths vs relational row access), so one shared HNSW
graph is built and each engine class drives it through its own
execution path — exactly the paper's apples-to-apples setup.  Smaller
n than Fig. 8 because graph construction is the expensive step in
pure Python.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.bench import emit_bench_json, print_series
from repro.datasets import exact_ground_truth, recall_at_k, sift_like, random_queries
from repro.index import HNSWIndex
from repro.obs.profile import QueryProfile

N = 6000
DIM = 32
NQ = 100
K = 10
EFS = (10, 20, 40, 80, 160)


_cache = {}


def setup():
    if "bundle" not in _cache:
        data = sift_like(N, dim=DIM, n_clusters=32, seed=0)
        queries = random_queries(data, NQ, seed=1)
        truth = exact_ground_truth(queries, data, K, "l2")
        index = HNSWIndex(DIM, M=12, ef_construction=80, seed=0)
        index.add(data)
        _cache["bundle"] = (data, queries, truth, index)
    return _cache["bundle"]


def _milvus_search(index, queries, k, ef):
    """Batch submission straight into the engine."""
    return index.search(queries, k, ef=ef)


def _vearch_search(index, queries, k, ef):
    """Per-query request path with JSON (de)serialization."""
    rows = []
    for qi in range(len(queries)):
        request = json.dumps({"vector": queries[qi].tolist(), "size": k})
        payload = json.loads(request)
        result = index.search(
            np.asarray(payload["vector"], dtype=np.float32), k, ef=ef
        )
        response = json.dumps([
            {"id": int(i), "score": float(s)} for i, s in result.row(0)
        ])
        json.loads(response)
        rows.append(result)
    from repro.index.base import SearchResult

    return SearchResult(
        np.concatenate([r.ids for r in rows]),
        np.concatenate([r.scores for r in rows]),
    )


def _relational_search(index, queries, k, ef):
    """System C class (PASE-style): HNSW as an opaque access method
    whose distance function is invoked *per tuple* through the
    extension ABI — no vectorized batch evaluation anywhere.  The
    graph is identical; only the execution model differs, which is
    exactly the paper's argument about relational extensions."""
    from repro.metrics import get_metric

    metric = get_metric("l2")

    def tuple_at_a_time_dist(query, nodes, _index=index, _metric=metric):
        nodes = np.asarray(nodes, dtype=np.int64)
        return np.array([
            _metric.single(query, _index._data[n]) for n in nodes
        ])

    original = index._dist
    index._dist = tuple_at_a_time_dist
    try:
        rows = []
        for qi in range(len(queries)):
            plan = json.dumps({
                "select": ["id", "distance"], "order_by": "distance",
                "limit": k, "probe": queries[qi].tolist(),
            })
            json.loads(plan)
            rows.append(index.search(queries[qi], k, ef=ef))
    finally:
        index._dist = original
    from repro.index.base import SearchResult

    return SearchResult(
        np.concatenate([r.ids for r in rows]),
        np.concatenate([r.scores for r in rows]),
    )


SYSTEMS = {
    "Milvus_HNSW": _milvus_search,
    "SystemA (HNSW service)": _vearch_search,
    "Vearch": _vearch_search,
    "SystemC (relational)": _relational_search,
}


def run_figure():
    data, queries, truth, index = setup()
    curves = {}
    from common import best_time

    for name, search in SYSTEMS.items():
        search(index, queries[:10], K, EFS[0])  # warm-up
        points = []
        for ef in EFS:
            result = search(index, queries, K, ef)
            elapsed = best_time(lambda: search(index, queries, K, ef), repeats=2)
            points.append((recall_at_k(result.ids, truth), NQ / elapsed))
        curves[name] = points
    return curves


@pytest.fixture(scope="module")
def curves():
    return run_figure()


def test_hnsw_reaches_high_recall(curves):
    assert max(r for r, __ in curves["Milvus_HNSW"]) >= 0.95


def test_recall_monotone_in_ef(curves):
    recalls = [r for r, __ in curves["Milvus_HNSW"]]
    assert all(b >= a - 0.02 for a, b in zip(recalls, recalls[1:]))


def test_milvus_beats_service_engines(curves):
    """Paper: 8.0x-17.1x over System A, 15.1x-60.4x over Vearch.

    In this substrate HNSW traversal itself is the bottleneck, so the
    per-request tax of the service engines shows up as a consistent
    but modest mean gap; the relational per-tuple executor loses big.
    """
    mean_m = np.mean([q for __, q in curves["Milvus_HNSW"]])
    for rival in ("SystemA (HNSW service)", "Vearch"):
        mean_r = np.mean([q for __, q in curves[rival]])
        assert mean_m > 0.97 * mean_r  # never meaningfully behind
    assert any(
        mean_m > np.mean([q for __, q in curves[r]])
        for r in ("SystemA (HNSW service)", "Vearch")
    )


def test_milvus_crushes_relational(curves):
    for (__, q_m), (___, q_r) in zip(
        curves["Milvus_HNSW"], curves["SystemC (relational)"]
    ):
        assert q_m > 1.5 * q_r


def test_benchmark_hnsw_search(benchmark):
    __, queries, truth, index = setup()
    result = benchmark(lambda: index.search(queries, K, ef=40))
    assert recall_at_k(result.ids, truth) > 0.85


def main():
    print(f"=== Figure 9: HNSW, n={N}, k={K} ===")
    entries = []
    curves = run_figure()
    __, queries, ___, index = setup()
    milvus_counters = []
    for ef in EFS:
        with QueryProfile("bench") as prof:
            index.search(queries, K, ef=ef)
        milvus_counters.append(prof.total_counters())
    for name, points in curves.items():
        print_series(
            name,
            [f"recall={r:.3f}" for r, __ in points],
            [f"{q:.0f} qps" for __, q in points],
        )
        for i, (recall, qps) in enumerate(points):
            entry = {
                "system": name, "ef": EFS[i], "recall": recall, "qps": qps,
            }
            if name == "Milvus_HNSW":
                entry["counters"] = milvus_counters[i]
            entries.append(entry)
    emit_bench_json(
        "fig9_hnsw",
        workload={"n": N, "dim": DIM, "nq": NQ, "k": K, "efs": list(EFS)},
        series=entries,
    )


if __name__ == "__main__":
    main()
