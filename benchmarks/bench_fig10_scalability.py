"""Figure 10: scalability.

(a) single node, throughput vs data size (paper: 1M -> 1B rows of
SIFT1B; here 1k -> 64k) — throughput should drop roughly
proportionally to data size.

(b) distributed, throughput vs number of reader nodes (paper: 4 -> 12
nodes, near-linear) — throughput computed from the cluster's
simulated parallel time (max per-node busy time), the quantity a
one-node-per-machine deployment would observe.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import MilvusEngine
from repro.bench import print_series
from repro.datasets import random_queries, sift_like
from repro.distributed import MilvusCluster

DIM = 32
K = 10
DATA_SIZES = (2000, 8000, 32000, 128000)
NODE_COUNTS = (1, 2, 4, 8, 12)
CLUSTER_N = 120000
CLUSTER_NQ = 200


def run_data_size_sweep():
    """Fixed nlist/nprobe so scanned rows grow linearly with n (the
    paper keeps the index configuration fixed across sizes)."""
    points = []
    for n in DATA_SIZES:
        data = sift_like(n, dim=DIM, n_clusters=32, seed=0)
        queries = random_queries(data, 200, seed=1)
        engine = MilvusEngine(index_type="IVF_FLAT", nlist=64)
        engine.fit(data)
        engine.search(queries[:10], K, nprobe=8)  # warm-up
        from common import best_time

        elapsed = best_time(lambda: engine.search(queries, K, nprobe=8), repeats=3)
        points.append((n, len(queries) / elapsed))
    return points


def run_node_sweep():
    """FLAT per reader so per-node work scales with shard size — the
    compute-bound regime where the shared-storage fan-out shows its
    near-linear scaling."""
    data = sift_like(CLUSTER_N, dim=DIM, n_clusters=32, seed=2)
    queries = random_queries(data, CLUSTER_NQ, seed=3)
    points = []
    for n_nodes in NODE_COUNTS:
        cluster = MilvusCluster(n_nodes, dim=DIM, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        cluster.search(queries[:10], K)  # warm-up
        sim_seconds = min(
            cluster.search(queries, K).simulated_parallel_seconds
            for __ in range(3)
        )
        points.append((n_nodes, CLUSTER_NQ / sim_seconds))
    return points


@pytest.fixture(scope="module")
def size_points():
    return run_data_size_sweep()


@pytest.fixture(scope="module")
def node_points():
    return run_node_sweep()


def test_throughput_drops_with_data_size(size_points):
    """Fig. 10a: 'throughput gracefully drops proportionally'.

    Non-strict monotonicity with 15% noise tolerance — the two
    smallest sizes are overhead-bound and can jitter; the overall
    decline must be unambiguous.
    """
    qps = [q for __, q in size_points]
    assert all(b < 1.15 * a for a, b in zip(qps, qps[1:]))
    assert qps[-1] < qps[0] / 2


def test_drop_roughly_proportional(size_points):
    """Throughput must track data growth once compute dominates.

    At laptop scale per-query overhead flattens the small-n points, so
    the proportionality check runs on the upper half of the sweep.
    """
    mid, last = size_points[-2], size_points[-1]
    ratio = mid[1] / last[1]
    scale = last[0] / mid[0]  # 4x data
    assert ratio > scale / 3


def test_near_linear_node_scaling(node_points):
    """Fig. 10b: 'the throughput increases linearly' (with slack for
    measurement noise on shared machines)."""
    qps = {n: q for n, q in node_points}
    assert qps[4] > 1.8 * qps[1]
    assert qps[12] > 1.4 * qps[4]


def test_benchmark_single_node_search(benchmark):
    data = sift_like(16000, dim=DIM, n_clusters=32, seed=0)
    queries = random_queries(data, 100, seed=1)
    engine = MilvusEngine(index_type="IVF_FLAT", nlist=128)
    engine.fit(data)
    benchmark(lambda: engine.search(queries, K, nprobe=8))


def main():
    print("=== Figure 10a: throughput vs data size (single node) ===")
    points = run_data_size_sweep()
    print_series("IVF_FLAT", [n for n, __ in points], [f"{q:.0f} qps" for __, q in points])
    print("=== Figure 10b: throughput vs #nodes (simulated parallel time) ===")
    points = run_node_sweep()
    print_series("cluster", [n for n, __ in points], [f"{q:.0f} qps" for __, q in points])


if __name__ == "__main__":
    main()
