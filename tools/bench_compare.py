"""Diff two combined benchmark reports and flag throughput regressions.

Usage::

    python tools/bench_compare.py OLD_REPORT NEW_REPORT [--threshold 0.20]

Both arguments are ``BENCH_report.json`` files produced by
``benchmarks/run_all.py`` (single ``BENCH_<name>.json`` files work
too — they are wrapped on the fly).  Series entries are matched across
the two reports by their *identity keys* — every key that is not a
measurement (see ``MEASUREMENT_KEYS`` in :mod:`repro.bench.report`) —
so reordered or partially-overlapping series still line up.

A matched entry FAILS when its ``qps`` dropped (or its
``latency_seconds`` grew) by more than ``--threshold`` (default 20%).
Work-counter drift is reported as a warning only: counters are exact,
so any drift means the engine did different work, but more work is a
performance question (caught by qps) while different-but-equal work
is merely worth a look.  Exit status is 1 iff at least one entry
failed — that is the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys

try:  # when src/ is on the path, share the schema constant
    from repro.bench.report import MEASUREMENT_KEYS
except ImportError:  # standalone invocation: keep in sync with repro.bench.report
    MEASUREMENT_KEYS = frozenset({
        "qps", "recall", "latency_seconds", "seconds",
        "p50", "p95", "p99", "speedup_vs_serial", "counters",
    })


def load_report(path: str) -> dict:
    """Load a combined report; wrap a bare BENCH_<name>.json payload."""
    with open(path) as fh:
        payload = json.load(fh)
    if "benchmarks" in payload:
        return payload["benchmarks"]
    return {payload.get("name", path): payload}


def identity_key(entry: dict) -> tuple:
    """Stable hashable key from an entry's non-measurement fields."""
    return tuple(sorted(
        (k, json.dumps(v, sort_keys=True))
        for k, v in entry.items()
        if k not in MEASUREMENT_KEYS
    ))


def compare_series(name: str, old: list, new: list, threshold: float):
    """Yields (kind, message) pairs; kind is 'fail'|'warn'|'info'."""
    old_by_key = {identity_key(e): e for e in old}
    new_by_key = {identity_key(e): e for e in new}
    matched = set(old_by_key) & set(new_by_key)
    dropped = len(old_by_key) - len(matched)
    added = len(new_by_key) - len(matched)
    if dropped or added:
        yield ("info", f"{name}: {len(matched)} entries matched "
                       f"({dropped} only in old, {added} only in new)")
    for key in sorted(matched):
        o, n = old_by_key[key], new_by_key[key]
        label = ", ".join(f"{k}={json.loads(v)}" for k, v in key) or name
        if "qps" in o and "qps" in n and o["qps"] > 0:
            drop = (o["qps"] - n["qps"]) / o["qps"]
            if drop > threshold:
                yield ("fail", f"{name} [{label}]: qps {o['qps']:.1f} -> "
                               f"{n['qps']:.1f} ({drop:+.0%} regression, "
                               f"threshold {threshold:.0%})")
        if ("latency_seconds" in o and "latency_seconds" in n
                and o["latency_seconds"] > 0):
            growth = (n["latency_seconds"] - o["latency_seconds"]) / o["latency_seconds"]
            if growth > threshold:
                yield ("fail", f"{name} [{label}]: latency "
                               f"{o['latency_seconds'] * 1e3:.2f}ms -> "
                               f"{n['latency_seconds'] * 1e3:.2f}ms "
                               f"({growth:+.0%} regression)")
        if o.get("counters") and n.get("counters") and o["counters"] != n["counters"]:
            diffs = {
                c: (o["counters"].get(c, 0), n["counters"].get(c, 0))
                for c in set(o["counters"]) | set(n["counters"])
                if o["counters"].get(c, 0) != n["counters"].get(c, 0)
            }
            yield ("warn", f"{name} [{label}]: work counters drifted: {diffs}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on benchmark throughput regressions")
    parser.add_argument("old", help="baseline BENCH_report.json")
    parser.add_argument("new", help="candidate BENCH_report.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative qps drop / latency growth that fails "
                             "(default 0.20)")
    args = parser.parse_args(argv)

    old_report = load_report(args.old)
    new_report = load_report(args.new)
    shared = sorted(set(old_report) & set(new_report))
    if not shared:
        print("bench_compare: no benchmarks in common; nothing to compare")
        return 0

    failures = 0
    for name in shared:
        old_series = old_report[name].get("series", [])
        new_series = new_report[name].get("series", [])
        for kind, message in compare_series(
            name, old_series, new_series, args.threshold
        ):
            prefix = {"fail": "FAIL", "warn": "WARN", "info": "info"}[kind]
            print(f"{prefix}: {message}")
            if kind == "fail":
                failures += 1
    only_old = sorted(set(old_report) - set(new_report))
    if only_old:
        print(f"info: benchmarks only in old report (skipped): {only_old}")
    if failures:
        print(f"bench_compare: {failures} regression(s) over threshold")
        return 1
    print(f"bench_compare: OK ({len(shared)} benchmark(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
