"""reprotop — a `top`-style terminal dashboard for one embedded server.

Polls the REST observability routes (`/stats`, `/health`, `/jobs`,
`/usage`, `/metrics`) and renders an operator's one-screen view:

* query throughput (qps) and p50/p99 search latency, derived from the
  Prometheus exposition's `collection_search_seconds` histogram;
* worker-pool pressure and background-job activity (running jobs with
  phase + rows/bytes progress, named queue depths);
* the watchdog health rollup with per-component status;
* top collections by accumulated work (`distance_evals` from the
  per-collection usage meter).

Everything is stdlib: ``curses`` for the screen, the repo's own
:class:`~repro.client.rest.RestRouter` as the data source.  The
rendering is a pure function (``render``) over a plain snapshot dict,
so tests can drive it without a terminal; ``--once`` prints a single
snapshot to stdout the same way.

Usage::

    python -m tools.reprotop --demo            # self-contained demo workload
    python -m tools.reprotop --demo --once     # one plain-text snapshot
    python -m tools.reprotop --demo -i 0.5     # 500ms refresh

There is no network transport in this repo (the router is
transport-agnostic), so reprotop always runs in-process: ``--demo``
spins up an embedded server plus a small insert/search workload and
watches it.  Embedding reprotop against your own server is one line:
``run(curses_screen, RestRouter(my_server))``.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "collect",
    "histogram_quantile",
    "parse_exposition",
    "render",
]

#: histogram family the latency panel reads.
LATENCY_FAMILY = "collection_search_seconds"


# ---------------------------------------------------------------------------
# exposition parsing (pure)
# ---------------------------------------------------------------------------


def parse_exposition(text: str) -> Dict[str, float]:
    """Prometheus text -> ``{sample-name-with-labels: value}``.

    Comment lines (`# HELP` / `# TYPE`) are skipped; the value is the
    text after the last space, per the exposition grammar.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        try:
            samples[key] = float(value)
        except ValueError:
            continue
    return samples


def _bucket_edges(samples: Dict[str, float], family: str) -> List[Tuple[float, float]]:
    """Cumulative ``(upper_edge, count)`` pairs for one histogram family,
    summed across label sets, ascending by edge."""
    edges: Dict[float, float] = {}
    prefix = family + "_bucket"
    for key, value in samples.items():
        if not key.startswith(prefix):
            continue
        marker = 'le="'
        at = key.rfind(marker)
        if at < 0:
            continue
        raw = key[at + len(marker):]
        raw = raw[: raw.index('"')]
        edge = float("inf") if raw == "+Inf" else float(raw)
        edges[edge] = edges.get(edge, 0.0) + value
    return sorted(edges.items())


def histogram_quantile(samples: Dict[str, float], family: str, q: float) -> float:
    """Estimate a quantile from exposition bucket lines (0.0 if empty).

    Same linear interpolation Prometheus' ``histogram_quantile`` uses;
    the +Inf bucket reports the highest finite edge.
    """
    buckets = _bucket_edges(samples, family)
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    prev_edge, prev_cum = 0.0, 0.0
    for edge, cumulative in buckets:
        if cumulative >= rank:
            if edge == float("inf"):
                return prev_edge
            span = cumulative - prev_cum
            if span <= 0:
                return edge
            return prev_edge + (edge - prev_edge) * (rank - prev_cum) / span
        prev_edge, prev_cum = edge, cumulative
    return prev_edge


def _family_total(samples: Dict[str, float], family: str) -> float:
    return sum(
        v for k, v in samples.items()
        if k == family or k.startswith(family + "{")
    )


# ---------------------------------------------------------------------------
# snapshot collection
# ---------------------------------------------------------------------------


def collect(
    fetch: Callable[[str, str], object],
    previous: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Poll the REST routes once; returns a plain snapshot dict.

    ``fetch(method, path)`` is anything returning an object with
    ``.status`` and ``.body`` (a :class:`RestRouter`'s ``handle``).
    ``previous`` (the prior snapshot) supplies the baseline for rate
    (qps) computation; rates are 0.0 on the first poll.
    """
    now = time.perf_counter()
    health = fetch("GET", "/health").body
    jobs = fetch("GET", "/jobs").body
    usage = fetch("GET", "/usage").body.get("collections", {})
    stats = fetch("GET", "/stats").body
    samples = parse_exposition(fetch("GET", "/metrics").body.get("text", ""))

    searches = _family_total(samples, LATENCY_FAMILY + "_count")
    qps = 0.0
    if previous is not None:
        dt = now - float(previous["at"])
        if dt > 0:
            qps = max(0.0, (searches - float(previous["searches"])) / dt)
    return {
        "at": now,
        "searches": searches,
        "qps": qps,
        "p50": histogram_quantile(samples, LATENCY_FAMILY, 0.50),
        "p99": histogram_quantile(samples, LATENCY_FAMILY, 0.99),
        "pool_depth": _family_total(samples, "exec_queue_depth"),
        "pool_active": _family_total(samples, "exec_active_workers"),
        "health": health,
        "jobs": jobs,
        "usage": usage,
        "uptime": float(stats.get("uptime_seconds", 0.0)),
        "version": str(stats.get("version", "?")),
        "flags": stats.get("flags", {}),
        "collections": len(stats.get("collections", {})),
    }


# ---------------------------------------------------------------------------
# rendering (pure)
# ---------------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:6.2f}s "
    return f"{seconds * 1000:6.2f}ms"


def _bar(value: float, limit: float, width: int = 12) -> str:
    filled = 0 if limit <= 0 else min(width, int(round(width * value / limit)))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render(snapshot: Dict[str, object], width: int = 80) -> List[str]:
    """Snapshot dict -> screen lines (pure; no curses, no I/O)."""
    health = snapshot.get("health", {})
    status = str(health.get("status", "unknown"))
    flags = snapshot.get("flags", {})
    flag_text = " ".join(
        name for name in ("observability", "parallel", "background_flush", "sanitize")
        if flags.get(name)
    ) or "none"
    lines = [
        (
            f"reprotop — repro v{snapshot.get('version', '?')}  "
            f"up {float(snapshot.get('uptime', 0.0)):8.1f}s  "
            f"collections {snapshot.get('collections', 0)}  "
            f"flags: {flag_text}"
        ),
        (
            f"queries  {float(snapshot.get('qps', 0.0)):8.1f} qps   "
            f"p50 {_fmt_seconds(float(snapshot.get('p50', 0.0)))}  "
            f"p99 {_fmt_seconds(float(snapshot.get('p99', 0.0)))}  "
            f"pool depth {int(snapshot.get('pool_depth', 0)):3d} "
            f"active {int(snapshot.get('pool_active', 0)):2d}"
        ),
        f"health   {status.upper()}",
    ]
    for name, comp in sorted(dict(health.get("components", {})).items()):
        comp_status = str(comp.get("status", "?"))
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(comp.items()) if k != "status"
        )
        lines.append(f"  {name:<12} {comp_status:<10} {detail}"[:width])

    jobs = snapshot.get("jobs", {})
    running = list(jobs.get("running", []))
    queues = dict(jobs.get("queues", {}))
    queue_text = "  ".join(
        f"{name}:{int(depth)}" for name, depth in sorted(queues.items())
    ) or "idle"
    lines.append(f"jobs     {len(running)} running   queues: {queue_text}")
    for job in running[:6]:
        rows_done = int(job.get("rows_done", 0))
        rows_total = int(job.get("rows_total", 0))
        lines.append(
            (
                f"  #{job.get('id', '?')} {job.get('kind', '?'):<12}"
                f" {job.get('phase', ''):<14}"
                f" {_bar(rows_done, max(rows_total, rows_done))}"
                f" {rows_done}/{rows_total or '?'} rows"
            )[:width]
        )

    usage = dict(snapshot.get("usage", {}))
    by_work = sorted(
        usage.items(),
        key=lambda item: int(item[1].get("counters", {}).get("distance_evals", 0)),
        reverse=True,
    )
    lines.append("top collections by work (distance evals):")
    if not by_work:
        lines.append("  (no usage recorded)")
    for name, record in by_work[:8]:
        evals = int(record.get("counters", {}).get("distance_evals", 0))
        lines.append(
            (
                f"  {name:<20} {evals:>12} evals"
                f"  {int(record.get('queries', 0)):>8} queries"
                f"  {int(record.get('insert_rows', 0)):>10} rows in"
            )[:width]
        )
    return [line[:width] for line in lines]


# ---------------------------------------------------------------------------
# demo workload + curses loop
# ---------------------------------------------------------------------------


def _demo_router():
    """An embedded server plus a background insert/search workload."""
    import os

    import numpy as np

    from repro import obs
    from repro.client.rest import RestRouter

    os.environ.setdefault("REPRO_OBS", "1")
    os.environ.setdefault("REPRO_BG_FLUSH", "1")
    obs.enable()
    router = RestRouter()
    router.handle("POST", "/collections", {
        "name": "demo",
        "vector_fields": [{"name": "embedding", "dim": 32}],
    })
    stop = threading.Event()

    def workload():
        rng = np.random.default_rng(7)
        while not stop.is_set():
            router.handle("POST", "/collections/demo/entities", {
                "data": {"embedding": rng.standard_normal((64, 32)).tolist()},
            })
            for _ in range(5):
                router.handle("POST", "/collections/demo/search", {
                    "field": "embedding",
                    "queries": rng.standard_normal((4, 32)).tolist(),
                    "k": 10,
                })
            router.handle("POST", "/flush", {})
            stop.wait(0.05)

    thread = threading.Thread(target=workload, name="reprotop-demo", daemon=True)
    thread.start()
    return router, stop


def run(screen, router, interval: float = 1.0) -> None:
    """Curses loop: poll, render, repeat until ``q``."""
    import curses

    curses.curs_set(0)
    screen.nodelay(True)
    snapshot: Optional[Dict[str, object]] = None
    while True:
        snapshot = collect(router.handle, previous=snapshot)
        height, width = screen.getmaxyx()
        screen.erase()
        for row, line in enumerate(render(snapshot, width=width - 1)[: height - 1]):
            screen.addstr(row, 0, line)
        screen.addstr(height - 1, 0, "q to quit"[: width - 1])
        screen.refresh()
        deadline = time.perf_counter() + interval
        while time.perf_counter() < deadline:
            if screen.getch() in (ord("q"), ord("Q")):
                return
            time.sleep(0.02)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--demo", action="store_true",
        help="spin up an embedded server with a demo workload and watch it",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one plain-text snapshot instead of the curses screen",
    )
    parser.add_argument(
        "-i", "--interval", type=float, default=1.0,
        help="refresh interval in seconds (default 1.0)",
    )
    args = parser.parse_args(argv)
    if not args.demo:
        parser.error("this build is in-process only: pass --demo "
                     "(or embed run()/collect() against your own router)")
    router, stop = _demo_router()
    try:
        if args.once:
            snapshot = collect(router.handle)
            time.sleep(max(args.interval, 0.2))  # let rates accumulate
            snapshot = collect(router.handle, previous=snapshot)
            print("\n".join(render(snapshot)))
            return 0
        import curses

        curses.wrapper(run, router, args.interval)
        return 0
    finally:
        stop.set()


if __name__ == "__main__":
    raise SystemExit(main())
