"""The four interprocedural rules: lock-order, blocking-under-lock,
thread-reachability, and escape.

All four consume the same :class:`InterprocModel` — the whole-program
call graph plus the may-hold-locks fixpoint — so the expensive parts
(parsing, symbol resolution, propagation) happen exactly once per run
regardless of how many rules are enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.callgraph import FunctionInfo, Project
from tools.reprolint.config import LintConfig
from tools.reprolint.engine import Violation
from tools.reprolint.locks import (
    HeldLocks, LockOrderEdge, compute_held_locks, find_cycles, static_edges,
)

__all__ = [
    "ALL_INTERPROC_RULES", "InterprocModel", "build_model", "run_interproc",
]


def _is_synthetic(role: str) -> bool:
    return role.startswith("<")


@dataclass
class InterprocModel:
    """Everything the interprocedural rules share."""

    project: Project
    config: LintConfig
    held: HeldLocks
    edges: List[LockOrderEdge]

    def role_reentrant(self, role: str) -> bool:
        for cls in self.project.classes.values():
            for decl in cls.locks.values():
                if decl.role == role and decl.reentrant:
                    return True
        return False

    def static_role_pairs(self) -> Set[Tuple[str, str]]:
        """``(held, acquired)`` pairs — superset of runtime sanitizer edges."""
        return {(e.held, e.acquired) for e in self.edges}


def build_model(project: Project, config: LintConfig) -> InterprocModel:
    held = compute_held_locks(project)
    return InterprocModel(project, config, held, static_edges(project, held))


def _violation(fn: FunctionInfo, line: int, col: int, rule: str, message: str) -> Violation:
    return Violation(
        path=fn.relpath, line=line, col=col, rule=rule, message=message,
        symbol=fn.qualname,
    )


def _chain_suffix(model: InterprocModel, fn: FunctionInfo, role: str) -> str:
    chain = model.held.chain(fn.qualname, role)
    if not chain:
        return ""
    return " (held via " + "; ".join(chain) + ")"


class LockOrderRule:
    """Inversions against the documented hierarchy + role-graph cycles."""

    rule_id = "lock-order"
    rationale = (
        "Two threads acquiring the same pair of locks in opposite orders "
        "deadlock. The documented hierarchy ([tool.reprolint.lock-hierarchy] "
        "in pyproject.toml) totally orders lock *levels*; this rule walks "
        "every statically possible held->acquired pair in the transitive "
        "call graph and flags acquisitions that go sideways or backwards, "
        "plus any cycle among undeclared (synthetic) locks."
    )
    example = (
        "    # hierarchy: [[\"lsm\"], [\"manifest\"]]\n"
        "    def gc(self):\n"
        "        with self._manifest_lock:   # role 'manifest' (level 1)\n"
        "            self.lsm.compact()      # eventually: with self._lock  "
        "# role 'lsm' (level 0)  <- BAD\n"
    )

    def check(self, model: InterprocModel) -> Iterator[Violation]:
        config = model.config
        if not config.lock_hierarchy:
            return
        declared = config.declared_roles()
        reported_undeclared: Set[str] = set()
        for edge in model.edges:
            fn = model.project.functions.get(edge.function)
            if fn is None:
                continue
            if edge.held == edge.acquired:
                if not model.role_reentrant(edge.acquired):
                    yield _violation(
                        fn, edge.line, 0, self.rule_id,
                        f"re-acquiring non-reentrant lock '{edge.acquired}' "
                        f"already held on this path"
                        + _chain_suffix(model, fn, edge.held),
                    )
                continue
            # every maybe_sanitize role must appear in the hierarchy once
            # it participates in nesting; synthetic locks are exempt.
            for role in (edge.held, edge.acquired):
                if (
                    not _is_synthetic(role)
                    and role not in declared
                    and role not in reported_undeclared
                ):
                    reported_undeclared.add(role)
                    yield _violation(
                        fn, edge.line, 0, self.rule_id,
                        f"lock role '{role}' nests with other locks but is "
                        f"not declared in [tool.reprolint.lock-hierarchy]",
                    )
            held_level = config.role_level(edge.held)
            acq_level = config.role_level(edge.acquired)
            if held_level is None or acq_level is None:
                continue
            if held_level >= acq_level:
                relation = (
                    "a same-level sibling of" if held_level == acq_level
                    else "above"
                )
                yield _violation(
                    fn, edge.line, 0, self.rule_id,
                    f"acquires '{edge.acquired}' while holding '{edge.held}': "
                    f"'{edge.acquired}' is {relation} '{edge.held}' in the "
                    f"documented hierarchy"
                    + _chain_suffix(model, fn, edge.held),
                )
        for cycle in find_cycles(model.edges):
            if all(
                config.role_level(role) is not None for role in cycle[:-1]
            ):
                continue  # declared-role cycles already reported above
            anchor = cycle[0]
            witness = next(
                (e for e in model.edges if e.held == anchor), None
            )
            fn = model.project.functions.get(witness.function) if witness else None
            if fn is None:
                continue
            yield _violation(
                fn, witness.line, 0, self.rule_id,
                "potential deadlock cycle in lock acquisition graph: "
                + " -> ".join(cycle),
            )


class BlockingUnderLockRule:
    """Blocking calls (I/O, sleeps, pool waits) reachable under a lock."""

    rule_id = "blocking-under-lock"
    rationale = (
        "A filesystem write, fsync, retry backoff, or pool submit/result "
        "wait performed while a lock is held stalls every thread contending "
        "on that lock for the duration of the slow operation — the exact "
        "hazard background flush/compaction introduces. The rule propagates "
        "may-held locks through call edges, so an fs.write three calls deep "
        "below a 'with self._lock' is still caught. Roles listed in "
        "allow-blocking (e.g. the WAL, which serializes its own appends by "
        "contract) are exempt."
    )
    example = (
        "    def flush(self):\n"
        "        with self._lock:\n"
        "            data = self._encode()\n"
        "            self.fs.write(path, data)   # <- BAD: I/O under lock\n"
        "    # fix: encode + snapshot under the lock, write after release\n"
    )

    def check(self, model: InterprocModel) -> Iterator[Violation]:
        allow = set(model.config.allow_blocking)
        for fn in model.project.functions.values():
            entry = model.held.entry(fn.qualname)
            for site in fn.calls:
                if site.blocking is None:
                    continue
                held = (set(site.held) | entry) - allow
                if not held:
                    continue
                role = sorted(held)[0]
                suffix = (
                    "" if role in site.held
                    else _chain_suffix(model, fn, role)
                )
                yield _violation(
                    fn, site.line, site.col, self.rule_id,
                    f"blocking call {site.blocking} may execute while "
                    f"holding {sorted(held)}" + suffix,
                )


class ThreadReachabilityRule:
    """Unguarded mutations reachable from concurrent roots."""

    rule_id = "thread-reachability"
    rationale = (
        "WorkerPool task entrypoints, background/daemon threads, and retry "
        "callbacks run concurrently with the spawning thread. A field "
        "mutated with no lock held, not covered by _GUARDED_BY or the "
        "pyproject guarded-fields table, and reachable from two or more "
        "concurrent roots (the main thread counts as one) is a data race "
        "waiting for a scheduler interleaving."
    )
    example = (
        "    def _drain_loop(self):        # threading.Thread target\n"
        "        while True:\n"
        "            self.consumed += 1    # <- BAD: no lock, no _GUARDED_BY,\n"
        "                                  #    main thread also calls reset()\n"
    )

    def check(self, model: InterprocModel) -> Iterator[Violation]:
        project = model.project
        reachers = self._roots_reaching(project)
        for fn in project.functions.values():
            if fn.name in {"__init__", "__post_init__", "__new__"}:
                continue
            cls = project.classes.get(fn.cls) if fn.cls else None
            if cls is None or not cls.has_concurrency_surface():
                continue
            roots = reachers.get(fn.qualname, set())
            if not roots:
                continue  # never runs off the main thread
            guards = project.class_guards(cls.qualname)
            locks = project.class_locks(cls.qualname)
            entry = model.held.entry(fn.qualname)
            seen_fields: Set[str] = set()
            for mut in fn.mutations:
                # NB: immutable_fields does NOT exempt here — immutability
                # protects readers of escaped references, not concurrent
                # writers; `self.n += 1` on an int is still a lost-update race.
                if mut.fieldname in guards or mut.fieldname in locks:
                    continue
                if set(mut.held) | entry:
                    continue  # some lock is held; discipline rules own this
                if mut.fieldname in seen_fields:
                    continue
                seen_fields.add(mut.fieldname)
                names = sorted(_short_root(r) for r in roots)[:3]
                yield _violation(
                    fn, mut.line, mut.col, self.rule_id,
                    f"field '{mut.fieldname}' mutated with no lock held and "
                    f"no _GUARDED_BY entry, but reachable from concurrent "
                    f"roots: main + {names}",
                )

    @staticmethod
    def _roots_reaching(project: Project) -> Dict[str, Set[str]]:
        """function -> set of spawned roots whose execution can reach it."""
        out: Dict[str, Set[str]] = {}
        for root in project.roots:
            frontier = [root]
            seen: Set[str] = set()
            while frontier:
                qualname = frontier.pop()
                if qualname in seen or qualname not in project.functions:
                    continue
                seen.add(qualname)
                out.setdefault(qualname, set()).add(root)
                for site in project.functions[qualname].calls:
                    frontier.extend(site.targets)
        return out


def _short_root(qualname: str) -> str:
    parts = qualname.split(".")
    tail = [p for p in parts if p != "<locals>"]
    return ".".join(tail[-2:])


class EscapeRule:
    """Locks or guarded containers leaked by return/yield."""

    rule_id = "escape"
    rationale = (
        "Returning a lock lets callers acquire it outside the owning "
        "class's discipline; returning a guarded mutable container hands "
        "out a reference that callers can read or mutate with no lock "
        "held, silently voiding every _GUARDED_BY promise. Return a copy "
        "(list(self._x)) or an immutable snapshot (tuple) instead."
    )
    example = (
        "    def segments(self):\n"
        "        return self._segments       # <- BAD if _GUARDED_BY guards it\n"
        "    # fix:  return list(self._segments)\n"
    )

    def check(self, model: InterprocModel) -> Iterator[Violation]:
        project = model.project
        for fn in project.functions.values():
            cls = project.classes.get(fn.cls) if fn.cls else None
            if cls is None:
                continue
            locks = project.class_locks(cls.qualname)
            guards = project.class_guards(cls.qualname)
            for ret in fn.returns:
                if ret.fieldname in locks:
                    yield _violation(
                        fn, ret.line, ret.col, self.rule_id,
                        f"{ret.kind} leaks lock '{ret.fieldname}' "
                        f"(role '{locks[ret.fieldname].role}') out of "
                        f"{cls.name}; callers can bypass its discipline",
                    )
                elif (
                    ret.fieldname in guards
                    and ret.fieldname not in cls.immutable_fields
                ):
                    yield _violation(
                        fn, ret.line, ret.col, self.rule_id,
                        f"{ret.kind} leaks guarded mutable field "
                        f"'{ret.fieldname}' (guarded by "
                        f"'{guards[ret.fieldname]}') out of {cls.name}; "
                        f"return a copy or immutable snapshot",
                    )


ALL_INTERPROC_RULES = [
    LockOrderRule(),
    BlockingUnderLockRule(),
    ThreadReachabilityRule(),
    EscapeRule(),
]


def run_interproc(
    project: Project, config: LintConfig,
    model: Optional[InterprocModel] = None,
) -> List[Violation]:
    """Run all four interprocedural rules over the project model."""
    model = model or build_model(project, config)
    violations: List[Violation] = []
    for rule in ALL_INTERPROC_RULES:
        violations.extend(rule.check(model))
    return violations
