"""CLI: ``python -m tools.reprolint [paths...]``.

Exits 0 when the tree is clean (modulo the committed baseline), 1 when
any new finding fires, 2 on usage errors.  Configuration comes from
``[tool.reprolint]`` in ``pyproject.toml`` (see
:mod:`tools.reprolint.config`).

Beyond linting, the CLI exposes the whole-program machinery directly:

``--stats``
    JSON stats of the call-graph model (function coverage, call-site
    resolution rate, lock roles, concurrency roots).  CI asserts the
    coverage stays >= 0.95.
``--explain RULE``
    Print a rule's rationale and a worked example.
``--check-edges FILE``
    Assert the runtime lock-order edges dumped by the sanitizer
    (``REPRO_SANITIZE_EDGES=file``) are a subset of the static graph.
``--write-baseline``
    Re-baseline: record every current finding as accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from tools.reprolint.config import load_config
from tools.reprolint.engine import ASTCache, build_project_model, lint_paths
from tools.reprolint.interproc import ALL_INTERPROC_RULES, build_model
from tools.reprolint.report import (
    load_baseline, render_json, render_sarif, render_text, split_by_baseline,
    write_baseline,
)
from tools.reprolint.rules import ALL_RULES

DEFAULT_CACHE_DIR = ".reprolint-cache"


def _all_rules():
    return list(ALL_RULES) + list(ALL_INTERPROC_RULES)


def _explain(rule_id: str) -> int:
    for rule in _all_rules():
        if rule.rule_id == rule_id:
            print(f"[{rule.rule_id}]")
            print()
            rationale = getattr(rule, "rationale", None)
            if rationale:
                print(rationale)
            example = getattr(rule, "example", None)
            if example:
                print()
                print("Example:")
                print(example.rstrip("\n"))
            return 0
    known = ", ".join(sorted(r.rule_id for r in _all_rules()))
    print(f"reprolint: error: unknown rule {rule_id!r} (known: {known})",
          file=sys.stderr)
    return 2


def _stats(config, cache) -> int:
    project = build_project_model(config, cache)
    stats = project.stats()
    stats["cache"] = {"hits": cache.hits, "misses": cache.misses}
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _check_edges(path: str, config, cache) -> int:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"reprolint: error: cannot read edges file {path}: {exc}",
              file=sys.stderr)
        return 2
    runtime = {(str(a), str(b)) for a, b in data.get("edges", [])}
    project = build_project_model(config, cache)
    model = build_model(project, config)
    static = model.static_role_pairs()
    missing = sorted(runtime - static)
    if missing:
        print("reprolint: runtime lock-order edges missing from the static "
              "graph (the call-graph model has drifted from reality):")
        for held, acquired in missing:
            print(f"  {held} -> {acquired}")
        return 1
    print(f"reprolint: all {len(runtime)} runtime edge(s) are covered by "
          f"{len(static)} static edge(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific static analysis for the Milvus reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.reprolint] from "
             "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--no-contracts", action="store_true",
        help="skip the registry contract checks (no package import)",
    )
    parser.add_argument(
        "--no-interproc", action="store_true",
        help="skip the whole-program (call-graph) rules",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk AST cache (.reprolint-cache/)",
    )
    parser.add_argument(
        "--output", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file overriding the configured path "
             "('' disables the baseline entirely)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file and exit",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print call-graph model statistics as JSON and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print a rule's rationale and example, then exit",
    )
    parser.add_argument(
        "--check-edges", default=None, metavar="FILE",
        help="assert runtime sanitizer edges (JSON dump) are a subset of "
             "the static lock-order graph",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in _all_rules():
            print(rule.rule_id)
        print("contract")
        return 0
    if args.explain is not None:
        return _explain(args.explain)

    if args.config is not None and not os.path.exists(args.config):
        print(f"reprolint: error: no such file or directory: {args.config}",
              file=sys.stderr)
        return 2
    config = load_config(args.config or "pyproject.toml")
    cache = ASTCache(None if args.no_cache else DEFAULT_CACHE_DIR)

    if args.stats:
        return _stats(config, cache)
    if args.check_edges is not None:
        return _check_edges(args.check_edges, config, cache)

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"reprolint: error: no such file or directory: {path}",
                  file=sys.stderr)
        return 2

    violations = lint_paths(
        args.paths or ["src", "tests"],
        config=config,
        contracts=False if args.no_contracts else None,
        interproc=False if args.no_interproc else None,
        cache=cache,
    )

    baseline_path = (
        args.baseline if args.baseline is not None else config.baseline_path
    ) or None
    if args.write_baseline:
        if not baseline_path:
            print("reprolint: error: --write-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, violations)
        print(f"reprolint: wrote {len(violations)} finding(s) to {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new, baselined, stale = split_by_baseline(violations, baseline)

    if args.output == "json":
        print(render_json(new, baselined, stale))
    elif args.output == "sarif":
        rule_meta = {
            r.rule_id: getattr(r, "rationale", r.rule_id) for r in _all_rules()
        }
        print(render_sarif(new, baselined, rule_meta))
    else:
        for violation in new:
            print(violation.format())
        if baselined or stale:
            print(render_text([], baselined, stale).split("\n", 1)[-1])
    if new:
        print(f"reprolint: {len(new)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
