"""CLI: ``python -m tools.reprolint [paths...]``.

Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage
errors.  Configuration comes from ``[tool.reprolint]`` in
``pyproject.toml`` (see :mod:`tools.reprolint.config`).
"""

from __future__ import annotations

import argparse
import os
import sys

from tools.reprolint.config import load_config
from tools.reprolint.engine import lint_paths
from tools.reprolint.rules import ALL_RULES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific static analysis for the Milvus reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.reprolint] from "
             "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--no-contracts", action="store_true",
        help="skip the registry contract checks (no package import)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule.rule_id)
        print("contract")
        return 0

    missing = [p for p in args.paths if not os.path.exists(p)]
    if args.config is not None and not os.path.exists(args.config):
        missing.append(args.config)
    if missing:
        for path in missing:
            print(f"reprolint: error: no such file or directory: {path}",
                  file=sys.stderr)
        return 2

    config = load_config(args.config or "pyproject.toml")
    violations = lint_paths(
        args.paths or ["src", "tests"],
        config=config,
        contracts=False if args.no_contracts else None,
    )
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
