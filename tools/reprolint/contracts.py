"""Registry contract checks: uniform index and metric surfaces.

Every class registered in ``repro.index.registry`` and every metric in
``repro.metrics.registry`` must implement the base-class surface with
compatible signatures, so ``create_index(name, dim, metric=...)`` and
the segment build/search/save/load paths work uniformly for all of
them.  These checks introspect the live registries (imports the
package) rather than re-deriving registration from the AST — the
registry IS the source of truth for what is pluggable.
"""

from __future__ import annotations

import inspect
import os
import sys
from typing import Iterator, List

from tools.reprolint.config import LintConfig
from tools.reprolint.engine import Violation

RULE = "contract"

#: VectorIndex hooks every registered index must provide (non-abstract).
INDEX_REQUIRED = ("_add", "_search", "ntotal", "memory_bytes")
#: public VectorIndex methods checked for signature compatibility when
#: a subclass overrides them.
INDEX_PUBLIC = ("train", "add", "search", "range_search", "memory_bytes", "stats")


def _location(obj) -> tuple:
    """Best-effort (relpath, line) for a class or function."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        line = inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return "<unknown>", 1
    try:
        path = os.path.relpath(path)
    except ValueError:
        pass
    return path.replace(os.sep, "/"), line


def _violation(obj, message: str) -> Violation:
    path, line = _location(obj)
    return Violation(path=path, line=line, col=0, rule=RULE, message=message)


def _params(fn) -> List[inspect.Parameter]:
    sig = inspect.signature(fn)
    return [p for name, p in sig.parameters.items() if name != "self"]


def _signature_compatible(name: str, base_fn, sub_fn) -> Iterator[str]:
    """Yield problems with an override's signature vs the base's."""
    base_params = _params(base_fn)
    sub_params = _params(sub_fn)
    base_named = [
        p for p in base_params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    sub_named = [
        p for p in sub_params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    for i, base_param in enumerate(base_named):
        if i >= len(sub_named):
            if any(p.kind == p.VAR_POSITIONAL for p in sub_params):
                break
            yield f"{name}() drops base parameter {base_param.name!r}"
            break
        if sub_named[i].name != base_param.name:
            yield (
                f"{name}() renames base parameter {base_param.name!r} "
                f"to {sub_named[i].name!r}"
            )
    for extra in sub_named[len(base_named):]:
        if extra.default is inspect.Parameter.empty:
            yield f"{name}() adds required parameter {extra.name!r} (needs a default)"
    base_has_kwargs = any(p.kind == p.VAR_KEYWORD for p in base_params)
    sub_has_kwargs = any(p.kind == p.VAR_KEYWORD for p in sub_params)
    if base_has_kwargs and not sub_has_kwargs:
        yield f"{name}() must accept **params (base method does)"


def _check_index(name: str, cls, base) -> Iterator[Violation]:
    if not (isinstance(cls, type) and issubclass(cls, base)):
        yield _violation(cls, f"index {name!r} is not a VectorIndex subclass")
        return
    if not cls.index_type:
        yield _violation(cls, f"index {name!r} has an empty index_type")
    elif cls.index_type != name:
        yield _violation(
            cls, f"index registered as {name!r} but index_type is {cls.index_type!r}"
        )
    elif cls.index_type != cls.index_type.upper():
        yield _violation(
            cls,
            f"index_type {cls.index_type!r} must be uppercase "
            "(create_index uppercases lookups)",
        )
    remaining = getattr(cls, "__abstractmethods__", frozenset())
    if remaining:
        yield _violation(
            cls, f"index {name!r} leaves abstract methods unimplemented: "
            f"{sorted(remaining)}"
        )
        return
    for hook in INDEX_REQUIRED:
        if not hasattr(cls, hook):
            yield _violation(cls, f"index {name!r} is missing {hook}")

    init_params = _params(cls.__init__)
    named = [
        p for p in init_params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if not named or named[0].name != "dim":
        yield _violation(
            cls.__init__,
            f"index {name!r}: __init__ first parameter must be 'dim' "
            "(uniform create_index contract)",
        )
    else:
        has_metric = any(p.name == "metric" for p in named) or any(
            p.kind == p.VAR_KEYWORD for p in init_params
        )
        if not has_metric:
            yield _violation(
                cls.__init__,
                f"index {name!r}: __init__ must accept a 'metric' keyword",
            )
        for extra in named[1:]:
            if extra.default is inspect.Parameter.empty:
                yield _violation(
                    cls.__init__,
                    f"index {name!r}: __init__ parameter {extra.name!r} needs a "
                    "default (create_index passes only dim/metric positionally)",
                )

    if "_search" in vars(cls) or any("_search" in vars(k) for k in cls.__mro__[1:-1]):
        search_fn = cls._search
        search_named = [
            p for p in _params(search_fn)
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        expected = ["queries", "k"]
        actual = [p.name for p in search_named[:2]]
        if actual != expected:
            yield _violation(
                search_fn,
                f"index {name!r}: _search must start with (queries, k), got {actual}",
            )
        if not any(p.kind == p.VAR_KEYWORD for p in _params(search_fn)):
            yield _violation(
                search_fn,
                f"index {name!r}: _search must accept **params "
                "(per-call search parameters are part of the contract)",
            )

    for method in INDEX_PUBLIC:
        base_fn = getattr(base, method, None)
        sub_fn = inspect.getattr_static(cls, method, None)
        if base_fn is None or sub_fn is None:
            continue
        if inspect.getattr_static(base, method) is sub_fn:
            continue  # not overridden
        if isinstance(sub_fn, (staticmethod, classmethod)):
            sub_fn = sub_fn.__func__
        if isinstance(sub_fn, property):
            continue
        for problem in _signature_compatible(method, base_fn, sub_fn):
            yield _violation(sub_fn, f"index {name!r}: {problem}")


def _check_metric(name: str, metric, base, kind_enum) -> Iterator[Violation]:
    cls = type(metric)
    if not isinstance(metric, base):
        yield _violation(cls, f"metric {name!r} is not a Metric instance")
        return
    if not metric.name:
        yield _violation(cls, f"metric {name!r} has an empty name")
    elif metric.name != name:
        yield _violation(
            cls, f"metric registered as {name!r} but .name is {metric.name!r}"
        )
    if not isinstance(metric.higher_is_better, bool):
        yield _violation(cls, f"metric {name!r}: higher_is_better must be a bool")
    if not isinstance(metric.kind, kind_enum):
        yield _violation(cls, f"metric {name!r}: kind must be a MetricKind")
    if getattr(cls, "__abstractmethods__", frozenset()):
        yield _violation(cls, f"metric {name!r} does not implement pairwise()")
        return
    try:
        worst = metric.worst_value()
    except Exception as exc:
        yield _violation(cls, f"metric {name!r}: worst_value() raised {exc!r}")
        return
    if metric.is_better(worst, 0.0) or not metric.is_better(0.0, worst):
        yield _violation(
            cls,
            f"metric {name!r}: worst_value() ({worst}) must lose against every "
            "real score for its higher_is_better direction",
        )


def check_contracts(config: LintConfig) -> List[Violation]:
    """Introspect both registries; returns contract violations."""
    src = os.path.abspath(config.src_root)
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)
    try:
        from repro.index import base as index_base, registry as index_registry
        from repro.metrics import base as metric_base, registry as metric_registry
    except Exception as exc:  # package not importable => contract unverifiable
        return [
            Violation(
                path=config.src_root,
                line=1,
                col=0,
                rule=RULE,
                message=f"cannot import repro registries for contract checks: {exc!r}",
            )
        ]
    violations: List[Violation] = []
    for name, cls in sorted(index_registry._REGISTRY.items()):
        violations.extend(_check_index(name, cls, index_base.VectorIndex))
    for name, metric in sorted(metric_registry._REGISTRY.items()):
        violations.extend(
            _check_metric(name, metric, metric_base.Metric, metric_base.MetricKind)
        )
    return violations
