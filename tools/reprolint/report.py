"""Output formats (text / JSON / SARIF) and the committed baseline.

Baseline entries are keyed by a *stable fingerprint* — rule, relative
path, enclosing symbol, and the message with line/column digits
normalized away — so unrelated edits that shift line numbers do not
invalidate the baseline, while any new finding (or an old one whose
message materially changes) fails the gate.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import Violation

__all__ = [
    "Baseline", "fingerprint", "load_baseline", "write_baseline",
    "render_json", "render_sarif", "render_text", "split_by_baseline",
]

_DIGITS = re.compile(r":\d+")


def fingerprint(violation: Violation) -> str:
    """Stable identity for a finding (line-number independent)."""
    message = _DIGITS.sub(":N", violation.message)
    payload = "\0".join(
        [violation.rule, violation.path, violation.symbol, message]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """Committed set of known findings that do not fail the run."""

    entries: Dict[str, dict] = field(default_factory=dict)

    def __contains__(self, violation: Violation) -> bool:
        return fingerprint(violation) in self.entries


def load_baseline(path: Optional[str]) -> Baseline:
    if not path:
        return Baseline()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return Baseline()
    entries = {
        str(entry["fingerprint"]): entry
        for entry in data.get("findings", [])
        if isinstance(entry, dict) and "fingerprint" in entry
    }
    return Baseline(entries)


def write_baseline(path: str, violations: Sequence[Violation]) -> None:
    findings = []
    seen: Set[str] = set()
    for violation in sorted(
        violations, key=lambda v: (v.path, v.line, v.rule)
    ):
        fp = fingerprint(violation)
        if fp in seen:
            continue
        seen.add(fp)
        findings.append({
            "fingerprint": fp,
            "rule": violation.rule,
            "path": violation.path,
            "symbol": violation.symbol,
            "message": violation.message,
            "line": violation.line,
        })
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "findings": findings}, fh, indent=2, sort_keys=True)
        fh.write("\n")


def split_by_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> Tuple[List[Violation], List[Violation], List[str]]:
    """-> (new findings, baselined findings, stale baseline fingerprints)."""
    new: List[Violation] = []
    old: List[Violation] = []
    hit: Set[str] = set()
    for violation in violations:
        fp = fingerprint(violation)
        if fp in baseline.entries:
            old.append(violation)
            hit.add(fp)
        else:
            new.append(violation)
    stale = sorted(set(baseline.entries) - hit)
    return new, old, stale


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def render_text(
    new: Sequence[Violation],
    baselined: Sequence[Violation] = (),
    stale: Sequence[str] = (),
) -> str:
    lines = [v.format() for v in new]
    if new:
        lines.append(f"{len(new)} problem(s) found.")
    else:
        lines.append("No problems found.")
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) suppressed.)")
    for fp in stale:
        lines.append(
            f"note: baseline entry {fp} no longer matches any finding "
            f"(run --write-baseline to prune)"
        )
    return "\n".join(lines)


def render_json(
    new: Sequence[Violation],
    baselined: Sequence[Violation] = (),
    stale: Sequence[str] = (),
    stats: Optional[dict] = None,
) -> str:
    def encode(violation: Violation) -> dict:
        return {
            "path": violation.path,
            "line": violation.line,
            "col": violation.col + 1,
            "rule": violation.rule,
            "message": violation.message,
            "symbol": violation.symbol,
            "fingerprint": fingerprint(violation),
        }

    payload = {
        "version": 1,
        "findings": [encode(v) for v in new],
        "baselined": [encode(v) for v in baselined],
        "stale_baseline": list(stale),
    }
    if stats is not None:
        payload["stats"] = stats
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    new: Sequence[Violation],
    baselined: Sequence[Violation] = (),
    rule_meta: Optional[Dict[str, str]] = None,
) -> str:
    """SARIF 2.1.0 — consumable by GitHub code scanning."""
    rule_meta = rule_meta or {}
    rule_ids = sorted({v.rule for v in list(new) + list(baselined)})
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}

    def result(violation: Violation, suppressed: bool) -> dict:
        out = {
            "ruleId": violation.rule,
            "ruleIndex": rule_index[violation.rule],
            "level": "error",
            "message": {"text": violation.message},
            "partialFingerprints": {
                "reprolint/v1": fingerprint(violation),
            },
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        if violation.symbol:
            out["locations"][0]["logicalLocations"] = [
                {"fullyQualifiedName": violation.symbol}
            ]
        if suppressed:
            out["suppressions"] = [{"kind": "external", "justification": "baseline"}]
        return out

    sarif = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": "tools/reprolint",
                    "version": "2.0.0",
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {"text": rule},
                            "fullDescription": {
                                "text": rule_meta.get(rule, rule),
                            },
                        }
                        for rule in rule_ids
                    ],
                },
            },
            "results": (
                [result(v, False) for v in new]
                + [result(v, True) for v in baselined]
            ),
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
