"""reprolint — a repo-specific static-analysis suite.

A from-scratch AST linter (no external dependencies) that enforces the
invariants the Milvus reproduction depends on:

* ``lock-discipline`` — fields declared guarded (via an in-class
  ``_GUARDED_BY`` mapping or the ``[tool.reprolint.guarded-fields]``
  table in ``pyproject.toml``) may only be mutated inside a
  ``with self.<lock>`` block, or in methods whose name ends with the
  configured locked suffix (default ``_locked``, meaning "caller holds
  the lock").
* ``global-rng`` — forbids the global numpy RNG (``np.random.rand`` &
  friends) and argless stdlib ``random.*`` calls inside ``src/repro``;
  reproducible recall/nprobe curves require ``np.random.default_rng(seed)``.
  Docstrings (the quickstart doctest included) are scanned too.
* ``contract`` — every class registered in the index registry and every
  metric registered in the metric registry must implement the base-class
  surface with compatible signatures.
* hygiene — ``mutable-default``, ``bare-except``, and ``float-eq``
  (``==``/``!=`` on distance/score values).

Run it as::

    python -m tools.reprolint src tests

Suppress a finding with ``# reprolint: disable=RULE`` on the offending
line (comma-separated rule names, or ``all``), or for a whole file with
``# reprolint: disable-file=RULE`` on any line.
"""

from tools.reprolint.config import LintConfig, load_config
from tools.reprolint.engine import Violation, lint_paths, lint_source

__all__ = [
    "LintConfig",
    "load_config",
    "Violation",
    "lint_paths",
    "lint_source",
]
