"""AST rules: lock-discipline, determinism, and hygiene checks.

Every rule consumes a :class:`FileContext` (parsed tree + config) and
yields :class:`~tools.reprolint.engine.Violation` records.  Rules are
registered in :data:`ALL_RULES`; adding a rule means adding a class
with a ``rule_id`` and a ``check`` method — nothing else changes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from tools.reprolint.config import LintConfig
from tools.reprolint.engine import FileContext, Violation

#: numpy.random attributes that are deterministic constructors (allowed);
#: everything else on the module is the hidden global RNG.
NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: stdlib ``random`` attributes that do NOT touch the module-global RNG.
STD_RANDOM_ALLOWED = {"Random", "SystemRandom", "getstate", "setstate"}

_DOCSTRING_RNG = re.compile(
    r"\b(?:np|numpy)\.random\.(?!(?:%s)\b)(\w+)\s*\(" % "|".join(NP_RANDOM_ALLOWED)
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> ``attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _dotted_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def _class_guards(classdef: ast.ClassDef, config: LintConfig) -> Dict[str, str]:
    """Guarded-field map for one class: in-code ``_GUARDED_BY`` + config."""
    guards: Dict[str, str] = {}
    for stmt in classdef.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "_GUARDED_BY"
                and isinstance(stmt.value, ast.Dict)
            ):
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                        guards[str(key.value)] = str(value.value)
    for qualified, lock in config.guarded_fields.items():
        clsname, _, fieldname = qualified.partition(".")
        if clsname == classdef.name and fieldname:
            guards[fieldname] = lock
    return guards


class _MethodLockChecker(ast.NodeVisitor):
    """Check one method body: guarded mutations must hold the lock."""

    def __init__(self, ctx: FileContext, guards: Dict[str, str], clsname: str):
        self.ctx = ctx
        self.guards = guards
        self.clsname = clsname
        self.held: List[str] = []
        self.violations: List[Violation] = []

    # -- lock tracking --------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        added = 0
        for item in node.items:
            name = _self_attr(item.context_expr)
            if name is not None:
                self.held.append(name)
                added += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(added):
            self.held.pop()

    def _fresh_scope(self, node: ast.AST) -> None:
        # A nested function/lambda may run later, outside the lock.
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fresh_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._fresh_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._fresh_scope(node)

    # -- mutation sites -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self.ctx.config.mutator_methods:
            fieldname = _self_attr(func.value)
            if fieldname in self.guards:
                self._require(fieldname, node, f"self.{fieldname}.{func.attr}()")
        self.generic_visit(node)

    def _check_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, node)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
        fieldname = _self_attr(target)
        if fieldname in self.guards:
            self._require(fieldname, node, f"self.{fieldname}")

    def _require(self, fieldname: str, node: ast.AST, what: str) -> None:
        lock = self.guards[fieldname]
        if lock not in self.held:
            self.violations.append(
                Violation(
                    path=self.ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="lock-discipline",
                    message=(
                        f"{self.clsname}: {what} is guarded by self.{lock} "
                        f"but mutated outside `with self.{lock}`"
                    ),
                )
            )


class LockDisciplineRule:
    rule_id = "lock-discipline"
    rationale = (
        "Fields listed in a class's _GUARDED_BY dict (or the pyproject "
        "guarded-fields table) are shared across threads; mutating one "
        "outside `with self.<lock>` is a data race. Methods ending in the "
        "locked-suffix run with the lock already held by convention and "
        "are exempt, as is __init__ (the object is not shared yet)."
    )
    example = (
        "    _GUARDED_BY = {\"_next_id\": \"_lock\"}\n"
        "    def bump(self):\n"
        "        self._next_id += 1     # <- BAD: no `with self._lock:`\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.ClassDef):
            guards = _class_guards(node, ctx.config)
            if not guards:
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__":
                    continue  # the object is not shared yet
                if stmt.name.endswith(ctx.config.locked_suffix):
                    continue  # convention: caller holds the lock
                args = stmt.args.posonlyargs + stmt.args.args
                if not args or args[0].arg != "self":
                    continue  # staticmethod/classmethod
                checker = _MethodLockChecker(ctx, guards, node.name)
                for body_stmt in stmt.body:
                    checker.visit(body_stmt)
                yield from checker.violations


# ---------------------------------------------------------------------------
# determinism (global RNG)
# ---------------------------------------------------------------------------


class GlobalRngRule:
    """Forbid hidden-global RNG calls in the library source tree."""

    rule_id = "global-rng"
    rationale = (
        "The paper reproduction must be bit-for-bit deterministic under a "
        "seed; numpy.random.* and random.* module-level calls draw from "
        "hidden global state that any import or thread can perturb. Use "
        "np.random.default_rng(seed) or a seeded random.Random instead. "
        "Applies only under the configured rng-paths."
    )
    example = (
        "    noise = np.random.normal(size=dim)          # <- BAD\n"
        "    noise = np.random.default_rng(seed).normal(size=dim)  # ok\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.config.rng_applies(ctx.relpath):
            return
        numpy_aliases: Set[str] = set()
        nprandom_aliases: Set[str] = set()
        stdrandom_aliases: Set[str] = set()
        banned_direct: Dict[str, str] = {}
        for node in ctx.nodes(ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    nprandom_aliases.add(alias.asname or "numpy")
                    if alias.asname is None:
                        numpy_aliases.add("numpy")
                elif alias.name == "random":
                    stdrandom_aliases.add(bound)
        for node in ctx.nodes(ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        nprandom_aliases.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in NP_RANDOM_ALLOWED:
                        banned_direct[alias.asname or alias.name] = (
                            f"numpy.random.{alias.name}"
                        )
            elif node.module == "random":
                for alias in node.names:
                    if alias.name not in STD_RANDOM_ALLOWED:
                        banned_direct[alias.asname or alias.name] = (
                            f"random.{alias.name}"
                        )

        for node in ctx.nodes(ast.Call):
            yield from self._check_call(
                ctx, node, numpy_aliases, nprandom_aliases,
                stdrandom_aliases, banned_direct,
            )
        yield from self._check_docstrings(ctx)

    def _check_call(self, ctx, node, numpy_aliases, nprandom_aliases,
                    stdrandom_aliases, banned_direct) -> Iterator[Violation]:
        chain = _dotted_chain(node.func)
        fn: Optional[str] = None
        origin = ""
        if len(chain) >= 3 and chain[0] in numpy_aliases and chain[1] == "random":
            fn, origin = chain[2], "numpy.random"
        elif len(chain) == 2 and chain[0] in nprandom_aliases:
            fn, origin = chain[1], "numpy.random"
        elif len(chain) == 2 and chain[0] in stdrandom_aliases:
            fn, origin = chain[1], "random"
        elif len(chain) == 1 and chain[0] in banned_direct:
            yield self._violation(ctx, node, banned_direct[chain[0]])
            return
        if fn is None:
            return
        allowed = NP_RANDOM_ALLOWED if origin == "numpy.random" else STD_RANDOM_ALLOWED
        if fn not in allowed:
            yield self._violation(ctx, node, f"{origin}.{fn}")

    def _check_docstrings(self, ctx: FileContext) -> Iterator[Violation]:
        docstring_owners = [ctx.tree] + ctx.nodes(
            ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef
        )
        for node in docstring_owners:
            doc = ast.get_docstring(node, clean=False)
            if not doc or not node.body:
                continue
            doc_node = node.body[0].value  # type: ignore[attr-defined]
            for offset, line in enumerate(doc.splitlines()):
                match = _DOCSTRING_RNG.search(line)
                if match:
                    yield Violation(
                        path=ctx.path,
                        line=doc_node.lineno + offset,
                        col=match.start(),
                        rule="global-rng",
                        message=(
                            f"docstring example calls numpy.random.{match.group(1)} "
                            "(global RNG); use np.random.default_rng(seed)"
                        ),
                    )

    def _violation(self, ctx: FileContext, node: ast.AST, name: str) -> Violation:
        return Violation(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule="global-rng",
            message=(
                f"{name} uses the hidden global RNG; "
                "use np.random.default_rng(seed) (or a seeded random.Random)"
            ),
        )


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------


class MutableDefaultRule:
    rule_id = "mutable-default"
    rationale = (
        "Default argument values evaluate once at def time; a mutable "
        "default (list/dict/set) is silently shared by every call, so "
        "state leaks between invocations. Use None and construct inside."
    )
    example = (
        "    def search(self, filters=[]):   # <- BAD: shared list\n"
        "    def search(self, filters=None): # ok\n"
        "        filters = [] if filters is None else filters\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Violation(
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                        rule="mutable-default",
                        message=(
                            f"{name}(): mutable default argument is shared "
                            "across calls; use None and construct inside"
                        ),
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "dict", "set", "bytearray"}
            and not node.args
            and not node.keywords
        )


class BareExceptRule:
    rule_id = "bare-except"
    rationale = (
        "A bare `except:` catches KeyboardInterrupt and SystemExit, which "
        "makes worker loops unkillable and hides shutdown bugs. Catch "
        "Exception, or something narrower."
    )
    example = (
        "    try:\n"
        "        task.run()\n"
        "    except:              # <- BAD\n"
        "    except Exception:    # ok\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.ExceptHandler):
            if node.type is None:
                yield Violation(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="bare-except",
                    message=(
                        "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                        "catch Exception (or something narrower)"
                    ),
                )


class FloatEqRule:
    """``==``/``!=`` on floating distance/score values is order-fragile."""

    rule_id = "float-eq"
    rationale = (
        "Distances and scores come out of floating-point reductions whose "
        "value depends on summation order (parallel merge vs serial scan); "
        "exact ==/!= on them is order-fragile. Compare with np.isclose or "
        "an absolute-difference tolerance. Names are matched against the "
        "configured float-eq-names segments."
    )
    example = (
        "    if best_score == 0.0:                 # <- BAD\n"
        "    if abs(best_score) < 1e-9:            # ok\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tokens = {t.lower() for t in ctx.config.float_eq_names}
        for node in ctx.nodes(ast.Compare):
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left_scoreish = self._is_scoreish(left, tokens)
                right_scoreish = self._is_scoreish(right, tokens)
                if (left_scoreish or right_scoreish) and (
                    left_scoreish and right_scoreish
                    or self._is_float_const(left)
                    or self._is_float_const(right)
                ):
                    yield Violation(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="float-eq",
                        message=(
                            "exact ==/!= on a distance/score float; compare "
                            "with a tolerance (np.isclose / abs diff)"
                        ),
                    )
                    break

    @staticmethod
    def _terminal_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @classmethod
    def _is_scoreish(cls, node: ast.AST, tokens: Set[str]) -> bool:
        name = cls._terminal_name(node)
        if not name:
            return False
        return any(seg in tokens for seg in name.lower().split("_") if seg)

    @staticmethod
    def _is_float_const(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)


# ---------------------------------------------------------------------------
# metric-name
# ---------------------------------------------------------------------------

#: Prometheus-flavoured snake_case: lowercase start, [a-z0-9_] body.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricNameRule:
    """Metric names must be snake_case; counter names must end ``_total``.

    Applies to any ``<registry>.counter/gauge/histogram("name", ...)``
    call whose first argument is a string literal.  Dynamic names are
    not checked (they cannot be validated statically).
    """

    rule_id = "metric-name"
    rationale = (
        "Metric names are a public, scrape-time API: snake_case keeps them "
        "Prometheus-compatible, and the _total suffix on counters is the "
        "convention dashboards rely on to apply rate(). Only string-literal "
        "first arguments are checked."
    )
    example = (
        "    obs.registry.counter(\"flushCount\")        # <- BAD (case)\n"
        "    obs.registry.counter(\"flush_total\")        # ok\n"
    )

    _FACTORIES = {"counter", "gauge", "histogram"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in self._FACTORIES):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if not METRIC_NAME_RE.match(name):
                yield Violation(
                    path=ctx.path, line=first.lineno, col=first.col_offset,
                    rule=self.rule_id,
                    message=f"metric name {name!r} is not snake_case "
                            f"(expected ^[a-z][a-z0-9_]*$)",
                )
            elif func.attr == "counter" and not name.endswith("_total"):
                yield Violation(
                    path=ctx.path, line=first.lineno, col=first.col_offset,
                    rule=self.rule_id,
                    message=f"counter name {name!r} must end with '_total'",
                )


# ---------------------------------------------------------------------------
# span-context
# ---------------------------------------------------------------------------


class SpanContextRule:
    """Tracer spans / profile stages must be entered via ``with``.

    A ``<tracer>.span(...)`` or ``profile_stage(...)`` call that is
    never entered records nothing (the timer starts on ``__enter__``),
    so the call must appear either directly as a ``with`` item or be
    assigned to a name that is used as a ``with`` item in the same
    file.  ``ProfileNode.stage(...)`` is exempt: pre-creating child
    stages on the coordinating thread (and entering them inside the
    workers) is the sanctioned fan-out determinism pattern.
    """

    rule_id = "span-context"
    rationale = (
        "Tracer spans and profile stages start their timers in __enter__; "
        "a span(...) call that is never entered as a context manager "
        "records nothing and silently drops the timing data. "
        "ProfileNode.stage pre-creation is the sanctioned exception."
    )
    example = (
        "    tracer.span(\"flush\")            # <- BAD: never entered\n"
        "    with tracer.span(\"flush\"):      # ok\n"
        "        ...\n"
    )

    _SPAN_ATTRS = {"span", "start_span"}
    _SPAN_NAMES = {"profile_stage"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        withitem_calls: Set[int] = set()
        withitem_names: Set[str] = set()
        for node in ctx.nodes(ast.With, ast.AsyncWith):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    withitem_calls.add(id(expr))
                elif isinstance(expr, ast.Name):
                    withitem_names.add(expr.id)

        for stmt, call in self._span_calls(ctx.tree):
            if id(call) in withitem_calls:
                continue
            if self._assigned_to_withitem(stmt, withitem_names):
                continue
            func = call.func
            label = func.attr if isinstance(func, ast.Attribute) else func.id
            yield Violation(
                path=ctx.path, line=call.lineno, col=call.col_offset,
                rule=self.rule_id,
                message=f"{label}(...) opened outside a 'with' statement; "
                        f"spans/stages only record when entered as a "
                        f"context manager",
            )

    def _span_calls(self, tree: ast.AST) -> Iterator[tuple]:
        """Yield ``(innermost_stmt, call)`` for every span-opening call."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            for expr in self._shallow_walk(node):
                if isinstance(expr, ast.Call) and self._is_span_call(expr):
                    yield node, expr

    @staticmethod
    def _shallow_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
        """Walk a statement's expressions without entering child statements."""
        stack = [c for c in ast.iter_child_nodes(stmt) if not isinstance(c, ast.stmt)]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                c for c in ast.iter_child_nodes(node) if not isinstance(c, ast.stmt)
            )

    @classmethod
    def _is_span_call(cls, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr in cls._SPAN_ATTRS
        if isinstance(func, ast.Name):
            return func.id in cls._SPAN_NAMES
        return False

    @staticmethod
    def _assigned_to_withitem(stmt: ast.stmt, withitem_names: Set[str]) -> bool:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return False
        target = stmt.targets[0]
        return isinstance(target, ast.Name) and target.id in withitem_names


ALL_RULES = [
    LockDisciplineRule(),
    GlobalRngRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    FloatEqRule(),
    MetricNameRule(),
    SpanContextRule(),
]
