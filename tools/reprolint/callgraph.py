"""Project-wide symbol table and conservative call graph.

The whole-program half of reprolint starts here: every file under
``config.project_roots`` is parsed (through the engine's content-hash
AST cache) into a :class:`Project` — modules, classes, functions,
per-class attribute types, and lock declarations — and then every
function body is visited once to extract the facts the
interprocedural rules consume:

* **call sites** with their resolved target set,
* **lock acquisitions** (``with self._lock`` over a sanitizer-role
  lock) with the locally-held set at that point,
* **spawn sites** — callables handed to ``threading.Thread``, a
  worker pool (``map_settled``/``map_ordered``/``submit``), or a
  retry policy — which become concurrency roots,
* **guarded-field mutations** and **guarded-field returns/yields**.

Call resolution is deliberately *heuristic but conservative*: a
receiver is typed via ``self``, constructor assignments in
``__init__`` (``self._wal = WriteAheadLog(...)``), parameter / return
annotations, and local constructor assignments; a resolved receiver
dispatches virtually (the static type **plus every subclass
override**), ``super()`` dispatches up the recorded MRO, and property
accesses resolve to their getter.  Calls whose receiver cannot be
typed are recorded as *unresolved* rather than guessed by name —
``--stats`` reports the resolution rate so precision loss is visible
instead of silent.  The known unsoundness (and why it is acceptable
here) is documented in docs/INTERNALS.md §15.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.config import LintConfig

__all__ = [
    "CallSite", "ClassInfo", "FunctionInfo", "LockDecl", "MutationSite",
    "Project", "ReturnSite", "build_project",
]

#: receiver pseudo-types for stdlib objects the engine knows block.
QUEUE_TYPE = "<queue.Queue>"
EVENT_TYPE = "<threading.Event>"
THREAD_TYPE = "<threading.Thread>"

#: methods on the pseudo-types above that can block the caller.
BLOCKING_STDLIB_METHODS = {
    (QUEUE_TYPE, "get"): "queue.Queue.get",
    (QUEUE_TYPE, "join"): "queue.Queue.join",
    (EVENT_TYPE, "wait"): "threading.Event.wait",
    (THREAD_TYPE, "join"): "threading.Thread.join",
}

#: FileSystem-style methods that do object-store I/O.
FS_METHODS = {"write", "read", "delete", "listdir", "exists"}

#: calls that copy a container, laundering an escape (rule 4).
COPYING_CALLS = {"list", "dict", "set", "tuple", "frozenset", "sorted", "bytes"}


@dataclass
class LockDecl:
    """One lock attribute declared in a class body or ``__init__``."""

    attr: str            #: attribute name, e.g. ``_lock``
    role: str            #: sanitizer role, or a synthetic ``<Class._attr>``
    reentrant: bool      #: constructed via ``threading.RLock()``
    declared: bool       #: role came from a ``maybe_sanitize(..., "role")``
    lineno: int = 0


@dataclass
class FunctionInfo:
    """One function/method (or nested function / lambda) in the model."""

    qualname: str        #: ``module.Class.method`` / ``module.func``
    module: str
    relpath: str
    name: str
    node: ast.AST
    cls: Optional[str] = None        #: owning class qualname
    is_property: bool = False
    decorators: List[str] = field(default_factory=list)
    lineno: int = 0
    # -- facts filled in by the body pass --
    calls: List["CallSite"] = field(default_factory=list)
    acquisitions: List[Tuple[str, int, int, Tuple[str, ...]]] = field(default_factory=list)
    mutations: List["MutationSite"] = field(default_factory=list)
    returns: List["ReturnSite"] = field(default_factory=list)
    spawns: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class CallSite:
    """One resolved (or unresolved) call inside a function body."""

    caller: str
    line: int
    col: int
    targets: Tuple[str, ...]         #: resolved callee qualnames
    held: Tuple[str, ...]            #: roles locally held at the site
    dotted: str = ""                 #: best-effort dotted source form
    blocking: Optional[str] = None   #: blocking classification label
    resolved: bool = True


@dataclass
class MutationSite:
    """A ``self.<field>`` write (assign/augassign/del/mutator call)."""

    fieldname: str
    line: int
    col: int
    held: Tuple[str, ...]


@dataclass
class ReturnSite:
    """A ``return``/``yield`` of a bare ``self.<field>``."""

    fieldname: str
    line: int
    col: int
    kind: str                        #: "return" or "yield"


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)   #: resolved qualnames
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    guards: Dict[str, str] = field(default_factory=dict)  #: field -> lock attr
    properties: Set[str] = field(default_factory=set)
    immutable_fields: Set[str] = field(default_factory=set)

    def has_concurrency_surface(self) -> bool:
        return bool(self.locks) or bool(self.guards)


class Project:
    """The resolved whole-program model consumed by the rules."""

    def __init__(self, config: LintConfig):
        self.config = config
        self.modules: Dict[str, ast.Module] = {}
        self.module_paths: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.imports: Dict[str, Dict[str, str]] = {}       #: module -> local -> dotted
        self.subclasses: Dict[str, Set[str]] = {}
        self.roots: Set[str] = set()                       #: concurrency roots
        self.root_witness: Dict[str, Tuple[str, int]] = {} #: root -> (spawner, line)
        self.skipped_files: List[Tuple[str, str]] = []     #: (relpath, reason)
        self.total_function_defs = 0                       #: raw def count

    # -- lookups ---------------------------------------------------------

    def mro(self, class_qualname: str) -> List[str]:
        """Depth-first base linearization (good enough for this repo)."""
        seen: List[str] = []

        def visit(qn: str) -> None:
            if qn in seen or qn not in self.classes:
                return
            seen.append(qn)
            for base in self.classes[qn].base_names:
                visit(base)

        visit(class_qualname)
        return seen

    def find_method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        for qn in self.mro(class_qualname):
            fn = self.classes[qn].methods.get(name)
            if fn is not None:
                return fn
        return None

    def virtual_targets(self, class_qualname: str, name: str) -> List[FunctionInfo]:
        """Static lookup plus every subclass override (may-dispatch set)."""
        found: Dict[str, FunctionInfo] = {}
        base = self.find_method(class_qualname, name)
        if base is not None:
            found[base.qualname] = base
        for sub in self._all_subclasses(class_qualname):
            override = self.classes[sub].methods.get(name)
            if override is not None:
                found[override.qualname] = override
        return list(found.values())

    def _all_subclasses(self, class_qualname: str) -> Set[str]:
        out: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            cls = frontier.pop()
            for sub in self.subclasses.get(cls, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def class_locks(self, class_qualname: str) -> Dict[str, LockDecl]:
        """Lock declarations visible on a class, including inherited."""
        locks: Dict[str, LockDecl] = {}
        for qn in reversed(self.mro(class_qualname)):
            locks.update(self.classes[qn].locks)
        return locks

    def class_guards(self, class_qualname: str) -> Dict[str, str]:
        guards: Dict[str, str] = {}
        for qn in reversed(self.mro(class_qualname)):
            guards.update(self.classes[qn].guards)
        for qualified, lock in self.config.guarded_fields.items():
            clsname, _, fieldname = qualified.partition(".")
            for qn in self.mro(class_qualname):
                if self.classes[qn].name == clsname and fieldname:
                    guards[fieldname] = lock
        return guards

    def is_filesystem_class(self, class_qualname: str) -> bool:
        return any(
            self.classes[qn].name == "FileSystem"
            for qn in self.mro(class_qualname)
        )

    def stats(self) -> Dict[str, object]:
        sites = [c for fn in self.functions.values() for c in fn.calls]
        resolved = sum(1 for c in sites if c.resolved)
        return {
            "files": len(self.modules),
            "skipped_files": [list(s) for s in self.skipped_files],
            "classes": len(self.classes),
            "functions_indexed": len(self.functions),
            "functions_found": self.total_function_defs,
            # indexed can exceed found (lambdas are indexed but not
            # counted by the raw def walk) — clamp to 1.0.
            "coverage": min(1.0, (
                len(self.functions) / self.total_function_defs
                if self.total_function_defs else 1.0
            )),
            "call_sites": len(sites),
            "call_sites_resolved": resolved,
            "resolution_rate": resolved / len(sites) if sites else 1.0,
            "concurrency_roots": sorted(self.roots),
            "lock_roles": sorted({
                decl.role
                for cls in self.classes.values()
                for decl in cls.locks.values()
            }),
        }


# ---------------------------------------------------------------------------
# pass 1: symbol table
# ---------------------------------------------------------------------------


def module_name_for(relpath: str, config: LintConfig) -> Optional[str]:
    rel = relpath.replace(os.sep, "/")
    src = config.src_root.rstrip("/") + "/"
    if rel.startswith(src):
        rel = rel[len(src):]
    else:
        # absolute src_root (tests point project_roots at a tmp dir)
        abs_path = os.path.abspath(relpath).replace(os.sep, "/")
        abs_src = os.path.abspath(config.src_root).replace(os.sep, "/").rstrip("/") + "/"
        if abs_path.startswith(abs_src):
            rel = abs_path[len(abs_src):]
    if not rel.endswith(".py"):
        return None
    rel = rel[:-3]
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    return rel.replace("/", ".")


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _decorator_names(node: ast.AST) -> List[str]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = _dotted(target)
        if parts:
            names.append(".".join(parts))
    return names


def _dotted(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    if isinstance(node, ast.Call):
        # a().b — keep the trailing attribute chain, mark the call head
        inner = _dotted(node.func)
        return inner + ["()"] if inner else []
    return []


def _lock_ctor(node: ast.AST) -> Optional[bool]:
    """``threading.Lock()`` -> False, ``threading.RLock()`` -> True."""
    if not isinstance(node, ast.Call):
        return None
    parts = _dotted(node.func)
    if parts and parts[-1] in {"Lock", "RLock"}:
        return parts[-1] == "RLock"
    return None


def _maybe_sanitize_decl(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """``maybe_sanitize(<ctor>, "role")`` -> (role, reentrant)."""
    if not (isinstance(node, ast.Call) and _dotted(node.func)[-1:] == ["maybe_sanitize"]):
        return None
    if len(node.args) < 2 or not (
        isinstance(node.args[1], ast.Constant) and isinstance(node.args[1].value, str)
    ):
        return None
    reentrant = _lock_ctor(node.args[0])
    return node.args[1].value, bool(reentrant)


_IMMUTABLE_CTORS = {
    "tuple", "frozenset", "int", "float", "str", "bool", "bytes",
    "len", "max", "min", "abs", "round",
}


def _is_immutable_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return not isinstance(node.value, (bytearray,))
    if isinstance(node, ast.Tuple):
        return True
    if isinstance(node, ast.Call):
        parts = _dotted(node.func)
        return bool(parts) and parts[-1] in _IMMUTABLE_CTORS
    if isinstance(node, (ast.UnaryOp, ast.BinOp)):
        return True  # arithmetic produces fresh scalars
    return False


def _scan_class(
    cls: ClassInfo, module: str, relpath: str, project: Project
) -> None:
    """Populate methods, locks, guards, attr types from one class body."""
    mutable_seen: Set[str] = set()
    for stmt in cls.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{cls.qualname}.{stmt.name}"
            decorators = _decorator_names(stmt)
            fn = FunctionInfo(
                qualname=qualname, module=module, relpath=relpath,
                name=stmt.name, node=stmt, cls=cls.qualname,
                is_property="property" in decorators or any(
                    d.endswith(".setter") for d in decorators
                ),
                decorators=decorators, lineno=stmt.lineno,
            )
            cls.methods[stmt.name] = fn
            if fn.is_property:
                cls.properties.add(stmt.name)
            project.functions[qualname] = fn
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "_GUARDED_BY" \
                        and isinstance(stmt.value, ast.Dict):
                    for key, value in zip(stmt.value.keys, stmt.value.values):
                        if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                            cls.guards[str(key.value)] = str(value.value)

    # attribute types / locks / immutability from every method body
    # (constructor assignments dominate, but flush()-style re-assigns
    # of e.g. ``self._memtable`` carry type information too).
    for fn in cls.methods.values():
        args = fn.node.args
        param_ann: Dict[str, ast.AST] = {
            a.arg: a.annotation
            for a in args.posonlyargs + args.args + args.kwonlyargs
            if a.annotation is not None
        }
        for node in ast.walk(fn.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if value is not None:
                    decl = _maybe_sanitize_decl(value)
                    if decl is not None:
                        role, reentrant = decl
                        cls.locks[attr] = LockDecl(
                            attr, role, reentrant, True, node.lineno
                        )
                        continue
                    reentrant = _lock_ctor(value)
                    if reentrant is not None:
                        cls.locks.setdefault(attr, LockDecl(
                            attr, f"<{cls.name}.{attr}>", reentrant, False,
                            node.lineno,
                        ))
                        continue
                    if not _is_immutable_expr(value):
                        mutable_seen.add(attr)
                if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                    cls.attr_types.setdefault(attr, set()).update(
                        _annotation_types(node.annotation, project, fn.module)
                    )
                if value is not None:
                    cls.attr_types.setdefault(attr, set()).update(
                        _ctor_types(value, project, fn.module)
                    )
                    cls.attr_types.setdefault(attr, set()).update(
                        _param_value_types(value, param_ann, project, fn.module)
                    )
    cls.immutable_fields = {
        attr for attr in cls.attr_types
        if attr not in mutable_seen and attr not in cls.locks
    } | {
        attr for attr in cls.guards if attr not in mutable_seen
    } - mutable_seen


def _resolve_symbol(name: str, module: str, project: Project) -> Optional[str]:
    """Resolve a dotted name in ``module`` to a project qualname."""
    imports = project.imports.get(module, {})
    head, _, rest = name.partition(".")
    dotted = imports.get(head)
    if dotted is not None:
        candidate = dotted + ("." + rest if rest else "")
    else:
        candidate = f"{module}.{name}"
    if candidate in project.classes or candidate in project.functions:
        return candidate
    # ``from repro.storage import LSMManager`` re-exported via __init__:
    # fall back to any project class with the same final name + module prefix.
    tail = candidate.rsplit(".", 1)[-1]
    matches = [
        qn for qn in project.classes
        if qn.rsplit(".", 1)[-1] == tail and candidate.rsplit(".", 1)[0] in qn
    ]
    if len(matches) == 1:
        return matches[0]
    return None


def _annotation_types(node: ast.AST, project: Project, module: str) -> Set[str]:
    """Class qualnames named by an annotation (Optional/string unwrapped)."""
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X] / "queue.Queue[...]": look at head + args
        out = _annotation_types(node.value, project, module)
        out |= _annotation_types(node.slice, project, module)
        return out
    if isinstance(node, ast.Tuple):
        out: Set[str] = set()
        for elt in node.elts:
            out |= _annotation_types(elt, project, module)
        return out
    parts = _dotted(node)
    if not parts:
        return set()
    dotted = ".".join(parts)
    if parts[-1] == "Queue":
        return {QUEUE_TYPE}
    if parts[-1] == "Event":
        return {EVENT_TYPE}
    if parts[-1] == "Thread":
        return {THREAD_TYPE}
    resolved = _resolve_symbol(dotted, module, project)
    if resolved in project.classes:
        return {resolved}
    return set()


def _param_value_types(
    node: ast.AST,
    param_ann: Dict[str, ast.AST],
    project: Project,
    module: str,
) -> Set[str]:
    """Types carried by annotated parameter names in a value expression.

    Covers the dependency-injection idiom ``self.fs = fs`` (and its
    ``fs or Default()`` / conditional variants) where the type lives on
    the ``__init__`` parameter annotation, not on a constructor call.
    """
    if isinstance(node, ast.IfExp):
        return _param_value_types(
            node.body, param_ann, project, module
        ) | _param_value_types(node.orelse, param_ann, project, module)
    if isinstance(node, ast.BoolOp):
        out: Set[str] = set()
        for value in node.values:
            out |= _param_value_types(value, param_ann, project, module)
        return out
    if isinstance(node, ast.Name) and node.id in param_ann:
        return _annotation_types(param_ann[node.id], project, module)
    return set()


def _ctor_types(node: ast.AST, project: Project, module: str) -> Set[str]:
    """Types produced by a value expression (constructor calls, etc.)."""
    if isinstance(node, ast.IfExp):
        return _ctor_types(node.body, project, module) | _ctor_types(
            node.orelse, project, module
        )
    if isinstance(node, ast.BoolOp):
        out: Set[str] = set()
        for value in node.values:
            out |= _ctor_types(value, project, module)
        return out
    if not isinstance(node, ast.Call):
        return set()
    parts = _dotted(node.func)
    if not parts or parts[-1] == "()":
        return set()
    dotted = ".".join(parts)
    if parts[-1] == "Queue":
        return {QUEUE_TYPE}
    if parts[-1] == "Event":
        return {EVENT_TYPE}
    if parts[-1] == "Thread":
        return {THREAD_TYPE}
    resolved = _resolve_symbol(dotted, module, project)
    if resolved in project.classes:
        return {resolved}
    if resolved in project.functions:
        fn = project.functions[resolved]
        returns = getattr(fn.node, "returns", None)
        return _annotation_types(returns, project, fn.module)
    return set()


# ---------------------------------------------------------------------------
# pass 2: function bodies
# ---------------------------------------------------------------------------


class _BodyVisitor(ast.NodeVisitor):
    """One pass over a function body: calls, locks, mutations, escapes.

    Tracks the locally-held lock-role stack through ``with`` blocks;
    nested function/lambda bodies are extracted as their own pseudo
    functions (they may run later, on another thread, without the
    enclosing locks).
    """

    def __init__(self, project: Project, fn: FunctionInfo):
        self.project = project
        self.fn = fn
        self.cls = project.classes.get(fn.cls) if fn.cls else None
        self.held: List[str] = []
        self.locals: Dict[str, Set[str]] = {}
        self._nested: List[Tuple[FunctionInfo, "ast.AST"]] = []
        self._lock_decls = (
            project.class_locks(fn.cls) if fn.cls else {}
        )
        self._prescan_locals()

    # -- type environment ------------------------------------------------

    def _prescan_locals(self) -> None:
        args = getattr(self.fn.node, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is not None:
                    self.locals[arg.arg] = _annotation_types(
                        arg.annotation, self.project, self.fn.module
                    )
        for node in ast.walk(self.fn.node):
            value: Optional[ast.AST] = None
            names: List[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names = [node.target.id]
                self.locals.setdefault(node.target.id, set()).update(
                    _annotation_types(node.annotation, self.project, self.fn.module)
                )
                value = node.value
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                if isinstance(node.optional_vars, ast.Name):
                    names = [node.optional_vars.id]
                    value = node.context_expr
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                self.locals.setdefault(node.target.id, set()).update(
                    self._iter_types(node.iter)
                )
            elif isinstance(node, ast.comprehension) and isinstance(
                node.target, ast.Name
            ):
                self.locals.setdefault(node.target.id, set()).update(
                    self._iter_types(node.iter)
                )
            if value is not None:
                types = self._expr_types(value)
                for name in names:
                    self.locals.setdefault(name, set()).update(types)

    def _iter_types(self, node: ast.AST) -> Set[str]:
        """Element types for a loop/comprehension iterable.

        Annotation flattening already conflates container and element
        classes (``Dict[str, VectorIndex]`` types the attribute as
        ``{VectorIndex}``), so iterating an annotated collection — or
        its ``.values()`` view — types the iteration variable with the
        same set.  This is what lets held-lock propagation follow
        ``for ix in self.indexes.values(): ix.memory_bytes()`` into the
        index classes' lock acquisitions.
        """
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args
        ):
            return self._expr_types(node.func.value)
        return self._expr_types(node)

    def _expr_types(self, node: ast.AST) -> Set[str]:
        """Candidate class qualnames for an expression's value."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return {self.cls.qualname}
            return set(self.locals.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            receivers = self._expr_types(node.value)
            out: Set[str] = set()
            for recv in receivers:
                if recv in self.project.classes:
                    info = self.project.classes[recv]
                    for qn in self.project.mro(recv):
                        out |= self.project.classes[qn].attr_types.get(node.attr, set())
                    prop = self.project.find_method(recv, node.attr)
                    if prop is not None and prop.is_property:
                        out |= _annotation_types(
                            getattr(prop.node, "returns", None),
                            self.project, prop.module,
                        )
            return out
        if isinstance(node, ast.Call):
            # constructor or annotated-return call
            direct = _ctor_types(node, self.project, self.fn.module)
            if direct:
                return direct
            targets = self._call_targets(node)
            out = set()
            for qn in targets:
                fn = self.project.functions.get(qn)
                if fn is not None:
                    out |= _annotation_types(
                        getattr(fn.node, "returns", None), self.project, fn.module
                    )
            return out
        if isinstance(node, ast.IfExp):
            return self._expr_types(node.body) | self._expr_types(node.orelse)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self._expr_types(value)
            return out
        return set()

    # -- call resolution -------------------------------------------------

    def _call_targets(self, node: ast.Call) -> List[str]:
        func = node.func
        # super().m()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.cls is not None
        ):
            for qn in self.project.mro(self.cls.qualname)[1:]:
                m = self.project.classes[qn].methods.get(func.attr)
                if m is not None:
                    return [m.qualname]
            return []
        if isinstance(func, ast.Attribute):
            receivers = self._expr_types(func.value)
            out: Dict[str, None] = {}
            for recv in receivers:
                if recv in self.project.classes:
                    for target in self.project.virtual_targets(recv, func.attr):
                        out[target.qualname] = None
            return list(out)
        if isinstance(func, ast.Name):
            resolved = _resolve_symbol(func.id, self.fn.module, self.project)
            if resolved in project_functions(self.project):
                return [resolved]
            if resolved in self.project.classes:
                init = self.project.find_method(resolved, "__init__")
                return [init.qualname] if init is not None else []
        return []

    def _classify_blocking(self, node: ast.Call, targets: Sequence[str]) -> Optional[str]:
        """Label a call that may block (I/O, sleeps, pool/queue waits)."""
        func = node.func
        dotted = ".".join(_dotted(func))
        # configured dotted patterns (time.sleep, requests., ...)
        for pattern in self.project.config.blocking_calls:
            if dotted == pattern or (pattern.endswith(".") and dotted.startswith(pattern)):
                return dotted
        if isinstance(func, ast.Attribute):
            # sorted: receiver sets have no stable order, and the label
            # feeds baseline fingerprints which must be deterministic
            receivers = sorted(self._expr_types(func.value))
            for recv in receivers:
                label = BLOCKING_STDLIB_METHODS.get((recv, func.attr))
                if label is not None:
                    return label
                if recv in self.project.classes:
                    info = self.project.classes[recv]
                    if func.attr in FS_METHODS and self.project.is_filesystem_class(recv):
                        return f"{info.name}.{func.attr} (filesystem I/O)"
                    if info.name == "RetryPolicy" and func.attr == "call":
                        return "RetryPolicy.call (retry with backoff)"
                    if info.name in {"WorkerPool", "QueryExecutor"} and (
                        func.attr in self.project.config.spawn_methods
                    ):
                        return f"{info.name}.{func.attr} (pool submit/wait)"
            # untyped receiver, structural fallbacks for the big ones
            if func.attr == "fsync" and dotted.startswith("os."):
                return "os.fsync"
        return None

    # -- spawned callables (concurrency roots) --------------------------

    def _callable_targets(self, node: ast.AST) -> List[str]:
        """Functions a callable-valued expression may refer to."""
        if isinstance(node, ast.Lambda):
            nested = self._extract_nested(node, "<lambda>")
            return [nested.qualname]
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._callable_targets(node.elt)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: List[str] = []
            for elt in node.elts:
                out.extend(self._callable_targets(elt))
            return out
        if isinstance(node, ast.Call):
            parts = _dotted(node.func)
            if parts and parts[-1] == "partial" and node.args:
                return self._callable_targets(node.args[0])
            return []
        if isinstance(node, ast.Attribute):
            receivers = self._expr_types(node.value)
            out = []
            for recv in receivers:
                if recv in self.project.classes:
                    for t in self.project.virtual_targets(recv, node.attr):
                        out.append(t.qualname)
            return out
        if isinstance(node, ast.Name):
            # a local def captured by name
            local_qual = f"{self.fn.qualname}.<locals>.{node.id}"
            if local_qual in self.project.functions:
                return [local_qual]
            resolved = _resolve_symbol(node.id, self.fn.module, self.project)
            if resolved in self.project.functions:
                return [resolved]
        return []

    def _record_spawns(self, node: ast.Call) -> List[str]:
        """Thread targets / pool tasks / retry callbacks at this call.

        Returns the callables that may ALSO run inline at this site
        (pool tasks under the executor's serial fallback, retry
        callbacks).  Thread targets are spawn-only: ``Thread(target=f)``
        never invokes ``f`` at the construction site, so the caller's
        locks must not propagate into it.
        """
        inline: List[str] = []
        thread_only: List[str] = []
        func = node.func
        parts = _dotted(func)
        is_thread = bool(parts) and parts[-1] == "Thread"
        is_spawn_method = (
            isinstance(func, ast.Attribute)
            and func.attr in self.project.config.spawn_methods
        )
        is_retry = False
        if isinstance(func, ast.Attribute) and func.attr == "call":
            for recv in self._expr_types(func.value):
                if recv in self.project.classes and (
                    self.project.classes[recv].name == "RetryPolicy"
                ):
                    is_retry = True
        if is_thread:
            for kw in node.keywords:
                if kw.arg == "target":
                    thread_only.extend(self._callable_targets(kw.value))
        elif is_spawn_method or is_retry:
            for arg in node.args:
                inline.extend(self._callable_targets(arg))
        for qual in inline + thread_only:
            self.fn.spawns.append((qual, node.lineno))
        return inline

    # -- nested callables ------------------------------------------------

    def _extract_nested(self, node: ast.AST, name: str) -> FunctionInfo:
        qualname = f"{self.fn.qualname}.<locals>.{name}"
        existing = self.project.functions.get(qualname)
        if existing is not None:
            return existing
        nested = FunctionInfo(
            qualname=qualname, module=self.fn.module, relpath=self.fn.relpath,
            name=name, node=node, cls=self.fn.cls,
            lineno=getattr(node, "lineno", self.fn.lineno),
        )
        self.project.functions[qualname] = nested
        self._nested.append((nested, node))
        return nested

    # -- visitor ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.fn.node:
            self.generic_visit(node)
        else:
            self._extract_nested(node, node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._extract_nested(node, "<lambda>")

    def visit_With(self, node: ast.With) -> None:
        added = 0
        for item in node.items:
            expr = item.context_expr
            role = self._lock_role(expr)
            if role is not None:
                self.fn.acquisitions.append(
                    (role, expr.lineno, expr.col_offset, tuple(self.held))
                )
                self.held.append(role)
                added += 1
            else:
                self.visit(expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(added):
            self.held.pop()

    visit_AsyncWith = visit_With

    def _lock_role(self, expr: ast.AST) -> Optional[str]:
        """Role acquired by a ``with`` item, or None if not a lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            decl = self._lock_decls.get(expr.attr)
            if decl is not None:
                return decl.role
            # `with self._unknown_lock:` in a class without the decl —
            # name-based fallback keeps the edge rather than dropping it.
            if expr.attr.endswith("_lock") or expr.attr.endswith("lock"):
                owner = self.cls.name if self.cls else self.fn.module
                return f"<{owner}.{expr.attr}>"
            return None
        if isinstance(expr, ast.Name):
            # module-level locks (e.g. pool._state_lock)
            if expr.id.endswith("_lock"):
                return f"<{self.fn.module}.{expr.id}>"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        spawned = self._record_spawns(node)
        targets = self._call_targets(node)
        dotted = ".".join(_dotted(node.func))
        blocking = self._classify_blocking(node, targets)
        resolved = bool(targets) or self._is_external(node)
        # Spawned callables may also run inline (serial fallback of the
        # executor), so they count as call targets too — with the
        # caller's locks held. Conservative on purpose.
        all_targets = tuple(dict.fromkeys(list(targets) + spawned))
        self.fn.calls.append(CallSite(
            caller=self.fn.qualname, line=node.lineno, col=node.col_offset,
            targets=all_targets, held=tuple(self.held), dotted=dotted,
            blocking=blocking, resolved=resolved,
        ))
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _is_external(self, node: ast.Call) -> bool:
        """Heads off to stdlib/numpy/etc. — resolved as 'not ours'."""
        parts = _dotted(node.func)
        if not parts:
            return False
        head = parts[0]
        if head == "self" or head in self.locals:
            return False
        imports = self.project.imports.get(self.fn.module, {})
        dotted = imports.get(head, head)
        return not dotted.startswith("repro")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # property access = call edge (properties that acquire locks)
        receivers = self._expr_types(node.value)
        for recv in receivers:
            if recv in self.project.classes:
                prop = self.project.find_method(recv, node.attr)
                if prop is not None and prop.is_property:
                    self.fn.calls.append(CallSite(
                        caller=self.fn.qualname, line=node.lineno,
                        col=node.col_offset, targets=(prop.qualname,),
                        held=tuple(self.held), dotted=f"<property {node.attr}>",
                    ))
        self.generic_visit(node)

    # -- mutations and escapes ------------------------------------------

    def _record_mutation(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_mutation(elt, node)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.fn.mutations.append(MutationSite(
                target.attr, node.lineno, node.col_offset, tuple(self.held)
            ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_mutation(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_mutation(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_mutation(node.target, node)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_mutation(target, node)

    def _record_escape(self, value: Optional[ast.AST], node: ast.AST, kind: str) -> None:
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            self.fn.returns.append(ReturnSite(
                value.attr, node.lineno, node.col_offset, kind
            ))

    def visit_Return(self, node: ast.Return) -> None:
        self._record_escape(node.value, node, "return")
        if node.value is not None:
            self.visit(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:
        self._record_escape(node.value, node, "yield")
        if node.value is not None:
            self.visit(node.value)

    # mutator-method calls on guarded fields count as mutations too
    def run(self) -> None:
        for stmt in getattr(self.fn.node, "body", []):
            self.visit(stmt)
        for call in list(self.fn.calls):
            pass
        # mutator calls: self._field.append(...) etc.
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.project.config.mutator_methods
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
                and not self._is_component(func.value.attr)
            ):
                # held set unknown at walk time; conservatively use the
                # lexical with-scan below
                self.fn.mutations.append(MutationSite(
                    func.value.attr, node.lineno, node.col_offset,
                    self._held_at_line(node),
                ))
        # process nested callables with a fresh (empty) held stack
        while self._nested:
            nested, node = self._nested.pop()
            sub = _BodyVisitor(self.project, nested)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt_or_expr in body:
                sub.visit(stmt_or_expr)
            sub._finish_nested()

    def _finish_nested(self) -> None:
        while self._nested:
            nested, node = self._nested.pop()
            sub = _BodyVisitor(self.project, nested)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt_or_expr in body:
                sub.visit(stmt_or_expr)
            sub._finish_nested()

    def _is_component(self, attr: str) -> bool:
        """True when ``self.<attr>`` is a project object, not a container.

        ``self._lsm.insert(...)`` is a method call on a component with
        its own locking (already a call edge), not an in-place mutation
        of the ``_lsm`` binding.
        """
        if self.cls is None:
            return False
        for qn in self.project.mro(self.cls.qualname):
            types = self.project.classes[qn].attr_types.get(attr, ())
            if any(t in self.project.classes for t in types):
                return True
        return False

    def _held_at_line(self, node: ast.AST) -> Tuple[str, ...]:
        """Roles of lock-``with`` statements lexically enclosing ``node``."""
        held: List[str] = []

        def descend(parent: ast.AST) -> bool:
            for child in ast.iter_child_nodes(parent):
                if child is node:
                    return True
                pushed = False
                if isinstance(child, ast.With):
                    for item in child.items:
                        role = self._lock_role(item.context_expr)
                        if role is not None:
                            held.append(role)
                            pushed = True
                if descend(child):
                    return True
                if pushed:
                    for item in child.items:
                        if self._lock_role(item.context_expr) is not None:
                            held.pop()
            return False

        descend(self.fn.node)
        return tuple(held)


def project_functions(project: Project) -> Dict[str, FunctionInfo]:
    return project.functions


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def build_project(config: LintConfig, parse) -> Project:
    """Build the whole-program model over ``config.project_roots``.

    ``parse`` is ``engine.parse_cached`` (injected to avoid an import
    cycle): ``parse(path) -> (relpath, tree | None, error | None)``.
    """
    project = Project(config)
    files: List[str] = []
    for root in config.project_roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git", ".pytest_cache"}
            )
            files.extend(
                os.path.join(dirpath, f) for f in sorted(filenames)
                if f.endswith(".py")
            )

    # pass 0: parse everything, count raw function defs for coverage
    parsed: List[Tuple[str, str, ast.Module]] = []
    for path in files:
        relpath, tree, error = parse(path)
        if tree is None:
            project.skipped_files.append((relpath, error or "unreadable"))
            continue
        module = module_name_for(relpath, config)
        if module is None:
            project.skipped_files.append((relpath, "outside src root"))
            continue
        project.modules[module] = tree
        project.module_paths[module] = relpath
        project.imports[module] = _collect_imports(tree)
        parsed.append((module, relpath, tree))
        project.total_function_defs += sum(
            1 for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )

    # pass 1a: classes + module functions (symbols only)
    for module, relpath, tree in parsed:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                qualname = f"{module}.{node.name}"
                project.classes[qualname] = ClassInfo(
                    qualname=qualname, module=module, name=node.name, node=node,
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{node.name}"
                project.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module, relpath=relpath,
                    name=node.name, node=node, lineno=node.lineno,
                    decorators=_decorator_names(node),
                )

    # pass 1b: resolve bases, then class internals (needs all symbols)
    for module, relpath, tree in parsed:
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cls = project.classes[f"{module}.{node.name}"]
            for base in node.bases:
                parts = _dotted(base)
                if not parts:
                    continue
                resolved = _resolve_symbol(".".join(parts), module, project)
                if resolved in project.classes:
                    cls.base_names.append(resolved)
                    project.subclasses.setdefault(resolved, set()).add(cls.qualname)
    for module, relpath, tree in parsed:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                _scan_class(
                    project.classes[f"{module}.{node.name}"], module, relpath,
                    project,
                )

    # pass 2: function bodies (fixed list — nested defs register as found)
    for fn in list(project.functions.values()):
        visitor = _BodyVisitor(project, fn)
        visitor.run()

    # concurrency roots from the recorded spawn sites
    for fn in project.functions.values():
        for target, line in fn.spawns:
            project.roots.add(target)
            project.root_witness.setdefault(target, (fn.qualname, line))
    return project
