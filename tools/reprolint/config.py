"""Configuration for reprolint, loaded from ``[tool.reprolint]``.

All rule knobs live in one place (``pyproject.toml``) so the invariants
are declared next to the package metadata rather than scattered across
the tool.  ``tomllib`` ships with Python >= 3.11; on older interpreters
the loader degrades to built-in defaults rather than failing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: dict-method names treated as in-place mutation of a guarded field.
DEFAULT_MUTATORS: Set[str] = {
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "pop", "popitem", "popleft", "clear", "update", "add", "setdefault",
    "move_to_end", "sort", "reverse",
}

#: snake_case name segments that mark a value as a distance/score.
DEFAULT_FLOAT_EQ_NAMES: List[str] = [
    "score", "scores", "dist", "dists", "distance", "distances", "radius",
]


#: method names that hand callables to a worker pool / executor.
DEFAULT_SPAWN_METHODS: List[str] = ["map_settled", "map_ordered", "submit"]

#: dotted-name patterns for calls that may block (sleep, I/O, waits)
#: beyond what the call graph resolves structurally.
DEFAULT_BLOCKING_CALLS: List[str] = ["time.sleep"]


@dataclass
class LintConfig:
    """Resolved reprolint configuration."""

    #: fnmatch patterns (matched against /-separated relative paths)
    #: excluded from linting entirely.
    exclude: List[str] = field(default_factory=list)
    #: path prefixes the determinism (global-rng) rule applies to.
    rng_paths: List[str] = field(default_factory=lambda: ["src/repro"])
    #: ``"ClassName.field" -> "lock_attr"`` entries merged with each
    #: class's in-code ``_GUARDED_BY`` declaration.
    guarded_fields: Dict[str, str] = field(default_factory=dict)
    #: methods ending with this suffix run with the lock already held.
    locked_suffix: str = "_locked"
    #: method names that count as mutations of a guarded field.
    mutator_methods: Set[str] = field(default_factory=lambda: set(DEFAULT_MUTATORS))
    #: name segments that identify distance/score values for float-eq.
    float_eq_names: List[str] = field(default_factory=lambda: list(DEFAULT_FLOAT_EQ_NAMES))
    #: run the registry contract checks (imports the package).
    contracts: bool = True
    #: directory inserted into sys.path for contract introspection.
    src_root: str = "src"

    # -- whole-program (interprocedural) analysis -----------------------

    #: directory trees forming the whole-program model; the call graph,
    #: lock propagation, and the four interprocedural rules run over
    #: exactly these files (independent of the CLI path arguments).
    project_roots: List[str] = field(default_factory=lambda: ["src/repro"])
    #: documented lock hierarchy as ordered levels of sanitizer role
    #: names: a role may only be acquired while holding roles from
    #: strictly earlier levels.  Roles sharing a level are unordered
    #: siblings and must never nest.  Empty = lock-order disabled.
    lock_hierarchy: List[List[str]] = field(default_factory=list)
    #: roles that are *designed* to be held across blocking calls
    #: (e.g. the WAL serializes its own fs appends by contract).
    allow_blocking: List[str] = field(default_factory=list)
    #: extra dotted-name patterns classified as blocking calls.
    blocking_calls: List[str] = field(default_factory=lambda: list(DEFAULT_BLOCKING_CALLS))
    #: method names whose callable arguments run on pool workers.
    spawn_methods: List[str] = field(default_factory=lambda: list(DEFAULT_SPAWN_METHODS))
    #: committed findings that do not fail the run (None = no baseline).
    baseline_path: Optional[str] = "tools/reprolint/baseline.json"
    #: run the interprocedural rules (CLI --no-interproc overrides).
    interproc: bool = True

    def rng_applies(self, relpath: str) -> bool:
        rel = relpath.replace(os.sep, "/")
        return any(rel.startswith(prefix.rstrip("/") + "/") or rel == prefix
                   for prefix in self.rng_paths)

    def role_level(self, role: str) -> Optional[int]:
        """Position of ``role`` in the declared hierarchy (None = undeclared)."""
        for level, roles in enumerate(self.lock_hierarchy):
            if role in roles:
                return level
        return None

    def declared_roles(self) -> Set[str]:
        return {role for level in self.lock_hierarchy for role in level}


def _read_pyproject(path: str) -> Optional[dict]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11: fall back to defaults
        return None
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except (FileNotFoundError, ValueError):
        return None


def load_config(pyproject_path: str = "pyproject.toml") -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.reprolint]`` (or defaults)."""
    cfg = LintConfig()
    data = _read_pyproject(pyproject_path)
    if not data:
        return cfg
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return cfg
    if "exclude" in table:
        cfg.exclude = [str(p) for p in table["exclude"]]
    if "rng-paths" in table:
        cfg.rng_paths = [str(p) for p in table["rng-paths"]]
    if "locked-suffix" in table:
        cfg.locked_suffix = str(table["locked-suffix"])
    if "float-eq-names" in table:
        cfg.float_eq_names = [str(n) for n in table["float-eq-names"]]
    if "extra-mutators" in table:
        cfg.mutator_methods |= {str(m) for m in table["extra-mutators"]}
    if "contracts" in table:
        cfg.contracts = bool(table["contracts"])
    if "src-root" in table:
        cfg.src_root = str(table["src-root"])
    if "project-roots" in table:
        cfg.project_roots = [str(p) for p in table["project-roots"]]
    if "baseline" in table:
        raw = str(table["baseline"])
        cfg.baseline_path = raw or None
    if "interproc" in table:
        cfg.interproc = bool(table["interproc"])
    guarded = table.get("guarded-fields", {})
    if isinstance(guarded, dict):
        cfg.guarded_fields = {str(k): str(v) for k, v in guarded.items()}
    hierarchy = table.get("lock-hierarchy", {})
    if isinstance(hierarchy, dict):
        order = hierarchy.get("order", [])
        if isinstance(order, list):
            cfg.lock_hierarchy = [
                [str(role) for role in level] for level in order
                if isinstance(level, list)
            ]
        if "allow-blocking" in hierarchy:
            cfg.allow_blocking = [str(r) for r in hierarchy["allow-blocking"]]
        if "blocking-calls" in hierarchy:
            cfg.blocking_calls += [str(c) for c in hierarchy["blocking-calls"]]
        if "spawn-methods" in hierarchy:
            cfg.spawn_methods += [str(m) for m in hierarchy["spawn-methods"]]
    return cfg
