"""Configuration for reprolint, loaded from ``[tool.reprolint]``.

All rule knobs live in one place (``pyproject.toml``) so the invariants
are declared next to the package metadata rather than scattered across
the tool.  ``tomllib`` ships with Python >= 3.11; on older interpreters
the loader degrades to built-in defaults rather than failing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: dict-method names treated as in-place mutation of a guarded field.
DEFAULT_MUTATORS: Set[str] = {
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "pop", "popitem", "popleft", "clear", "update", "add", "setdefault",
    "move_to_end", "sort", "reverse",
}

#: snake_case name segments that mark a value as a distance/score.
DEFAULT_FLOAT_EQ_NAMES: List[str] = [
    "score", "scores", "dist", "dists", "distance", "distances", "radius",
]


@dataclass
class LintConfig:
    """Resolved reprolint configuration."""

    #: fnmatch patterns (matched against /-separated relative paths)
    #: excluded from linting entirely.
    exclude: List[str] = field(default_factory=list)
    #: path prefixes the determinism (global-rng) rule applies to.
    rng_paths: List[str] = field(default_factory=lambda: ["src/repro"])
    #: ``"ClassName.field" -> "lock_attr"`` entries merged with each
    #: class's in-code ``_GUARDED_BY`` declaration.
    guarded_fields: Dict[str, str] = field(default_factory=dict)
    #: methods ending with this suffix run with the lock already held.
    locked_suffix: str = "_locked"
    #: method names that count as mutations of a guarded field.
    mutator_methods: Set[str] = field(default_factory=lambda: set(DEFAULT_MUTATORS))
    #: name segments that identify distance/score values for float-eq.
    float_eq_names: List[str] = field(default_factory=lambda: list(DEFAULT_FLOAT_EQ_NAMES))
    #: run the registry contract checks (imports the package).
    contracts: bool = True
    #: directory inserted into sys.path for contract introspection.
    src_root: str = "src"

    def rng_applies(self, relpath: str) -> bool:
        rel = relpath.replace(os.sep, "/")
        return any(rel.startswith(prefix.rstrip("/") + "/") or rel == prefix
                   for prefix in self.rng_paths)


def _read_pyproject(path: str) -> Optional[dict]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11: fall back to defaults
        return None
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except (FileNotFoundError, ValueError):
        return None


def load_config(pyproject_path: str = "pyproject.toml") -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.reprolint]`` (or defaults)."""
    cfg = LintConfig()
    data = _read_pyproject(pyproject_path)
    if not data:
        return cfg
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return cfg
    if "exclude" in table:
        cfg.exclude = [str(p) for p in table["exclude"]]
    if "rng-paths" in table:
        cfg.rng_paths = [str(p) for p in table["rng-paths"]]
    if "locked-suffix" in table:
        cfg.locked_suffix = str(table["locked-suffix"])
    if "float-eq-names" in table:
        cfg.float_eq_names = [str(n) for n in table["float-eq-names"]]
    if "extra-mutators" in table:
        cfg.mutator_methods |= {str(m) for m in table["extra-mutators"]}
    if "contracts" in table:
        cfg.contracts = bool(table["contracts"])
    if "src-root" in table:
        cfg.src_root = str(table["src-root"])
    guarded = table.get("guarded-fields", {})
    if isinstance(guarded, dict):
        cfg.guarded_fields = {str(k): str(v) for k, v in guarded.items()}
    return cfg
