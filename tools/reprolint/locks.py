"""May-hold-locks propagation over the call graph.

Given the :class:`~tools.reprolint.callgraph.Project` model, this
module answers two questions the interprocedural rules need:

1. **Which lock roles may be held when function F starts executing?**
   Computed as a fixpoint over call edges::

       held_on_entry(F) = union over call sites S calling F of
                          held_at(S) ∪ held_on_entry(caller(S))

   Concurrency roots (pool tasks, thread targets, retry callbacks)
   contribute an *empty* entry set for their spawned execution — but a
   callable may also run inline via the executor's serial fallback, in
   which case the spawning site's held set applies; the call graph
   records both, so the fixpoint naturally covers both.

2. **What are the static lock-order edges?**  For every acquisition
   site, each role already held (locally or on entry) gains an edge to
   the newly acquired role.  This mirrors the runtime sanitizer, which
   records ``held -> acquiring`` for every role on the stack — the
   cross-check test asserts runtime edges ⊆ these static edges.

Each propagated fact carries one *witness* — a call chain from a
function that acquires the lock down to the function holding it — so
findings print an actionable path instead of a bare assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.callgraph import Project

__all__ = ["HeldLocks", "LockOrderEdge", "compute_held_locks", "static_edges"]


@dataclass(frozen=True)
class Witness:
    """How a held role reached a function: ``caller`` called us at ``line``."""

    caller: str
    line: int


@dataclass
class HeldLocks:
    """Fixpoint result: may-held-on-entry roles per function."""

    #: function qualname -> roles that may be held when it is entered.
    on_entry: Dict[str, Set[str]] = field(default_factory=dict)
    #: (function, role) -> witness call edge that propagated the role.
    witness: Dict[Tuple[str, str], Witness] = field(default_factory=dict)

    def entry(self, qualname: str) -> Set[str]:
        return self.on_entry.get(qualname, set())

    def chain(self, qualname: str, role: str, limit: int = 8) -> List[str]:
        """Render the witness chain for ``role`` held entering ``qualname``."""
        steps: List[str] = []
        seen: Set[str] = set()
        current = qualname
        while len(steps) < limit:
            wit = self.witness.get((current, role))
            if wit is None or wit.caller in seen:
                break
            steps.append(f"{wit.caller}:{wit.line} -> {_short(current)}")
            seen.add(current)
            current = wit.caller
        return steps[::-1]


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def compute_held_locks(project: Project) -> HeldLocks:
    """Propagate may-hold-locks sets through call edges to a fixpoint."""
    held = HeldLocks()
    for qualname in project.functions:
        held.on_entry[qualname] = set()

    # Iterate to fixpoint: the lattice is finite (roles per function),
    # and every pass only grows sets, so this terminates quickly.
    changed = True
    passes = 0
    while changed and passes < 100:
        changed = False
        passes += 1
        for fn in project.functions.values():
            entry = held.on_entry[fn.qualname]
            for site in fn.calls:
                at_site = entry | set(site.held)
                if not at_site:
                    continue
                for target in site.targets:
                    if target not in held.on_entry:
                        continue
                    target_set = held.on_entry[target]
                    new = at_site - target_set
                    if new:
                        target_set |= new
                        changed = True
                        for role in new:
                            held.witness.setdefault(
                                (target, role), Witness(fn.qualname, site.line)
                            )
    return held


@dataclass(frozen=True)
class LockOrderEdge:
    """``held`` was held while ``acquired`` was being acquired."""

    held: str
    acquired: str
    function: str
    line: int
    #: True when ``held`` was locally visible at the with-statement,
    #: False when it arrived via a caller (witness chain explains how).
    local: bool


def static_edges(project: Project, held: HeldLocks) -> List[LockOrderEdge]:
    """Every statically possible ``held -> acquired`` role pair."""
    edges: Dict[Tuple[str, str], LockOrderEdge] = {}
    for fn in project.functions.values():
        entry = held.entry(fn.qualname)
        for role, line, _col, local_held in fn.acquisitions:
            for other in local_held:
                key = (other, role)
                if key not in edges:
                    edges[key] = LockOrderEdge(other, role, fn.qualname, line, True)
            for other in entry:
                key = (other, role)
                if key not in edges:
                    edges[key] = LockOrderEdge(other, role, fn.qualname, line, False)
    return sorted(edges.values(), key=lambda e: (e.held, e.acquired))


def find_cycles(edges: Sequence[LockOrderEdge]) -> List[List[str]]:
    """Cycles in the role graph (each is a potential deadlock)."""
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        if edge.held == edge.acquired:
            continue  # reentrant self-edges handled by the rule
        graph.setdefault(edge.held, set()).add(edge.acquired)
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(node: str) -> None:
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                cycle = stack[stack.index(nxt):] + [nxt]
                # canonicalize: rotate so the smallest role leads
                body = cycle[:-1]
                pivot = body.index(min(body))
                canon = tuple(body[pivot:] + body[:pivot])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(canon) + [canon[0]])
            elif state == WHITE:
                dfs(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            dfs(node)
    return cycles
