"""reprolint engine: file walking, AST cache, suppression, orchestration.

Rules are pluggable: anything with a ``rule_id`` string and a
``check(ctx) -> Iterator[Violation]`` method.  AST rules run per file
over a shared, pre-built node index (one traversal per file no matter
how many rules run); the registry contract checks (which import the
package) run once per invocation from :mod:`tools.reprolint.contracts`;
the interprocedural rules (:mod:`tools.reprolint.interproc`) run once
over the whole-program model built from ``config.project_roots``.

Parsed ASTs are cached keyed by the file's content hash — in memory
within a run, and optionally on disk (``.reprolint-cache/``) across
runs so re-linting after touching one file re-parses only that file.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import os
import pickle
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from tools.reprolint.config import LintConfig

_SUPPRESS_LINE = re.compile(r"#\s*reprolint:\s*disable=([\w\-,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*reprolint:\s*disable-file=([\w\-,\s]+)")

_CACHE_VERSION = 2  # bump to invalidate on-disk pickles after AST changes


@dataclass(frozen=True)
class Violation:
    """One rule finding, printable as ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: enclosing symbol (``module.Class.method``) when known — feeds the
    #: baseline fingerprint so findings survive line-number drift.
    symbol: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: [{self.rule}] {self.message}"


class NodeIndex:
    """One-walk index of an AST: nodes by type, plus enclosing symbols."""

    def __init__(self, tree: ast.Module):
        self.by_type: Dict[type, List[ast.AST]] = defaultdict(list)
        self.symbol_of: Dict[ast.AST, str] = {}
        self._walk(tree, [])

    def _walk(self, node: ast.AST, scope: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            self.by_type[type(child)].append(child)
            if scope:
                self.symbol_of[child] = ".".join(scope)
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(child, scope + [child.name])
            else:
                self._walk(child, scope)

    def nodes(self, *types: Type[ast.AST]) -> List[ast.AST]:
        out: List[ast.AST] = []
        for node_type in types:
            out.extend(self.by_type.get(node_type, ()))
        return out

    def symbol_at_line(self, lineno: int) -> str:
        """Best-effort enclosing def/class for a line (for fingerprints)."""
        best = ""
        best_start = -1
        for node_type in (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef):
            for node in self.by_type.get(node_type, ()):
                end = getattr(node, "end_lineno", None)
                if node.lineno <= lineno and (end is None or lineno <= end):
                    if node.lineno > best_start:
                        best_start = node.lineno
                        prefix = self.symbol_of.get(node, "")
                        best = f"{prefix}.{node.name}" if prefix else node.name
        return best


@dataclass
class FileContext:
    """Everything an AST rule needs about one file."""

    path: str
    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig
    _index: Optional[NodeIndex] = field(default=None, repr=False)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    @property
    def index(self) -> NodeIndex:
        if self._index is None:
            self._index = NodeIndex(self.tree)
        return self._index

    def nodes(self, *types: Type[ast.AST]) -> List[ast.AST]:
        return self.index.nodes(*types)


class ASTCache:
    """Content-hash keyed AST cache (in-memory; optional on-disk layer)."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        self._memory: Dict[str, ast.Module] = {}
        self.hits = 0
        self.misses = 0

    def load(self, path: str) -> Tuple[str, str, Optional[ast.Module], Optional[str]]:
        """-> (relpath, source, tree | None, error | None)."""
        relpath = _relative(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            return relpath, "", None, str(exc)
        digest = hashlib.sha256(
            f"{_CACHE_VERSION}\0".encode() + source.encode("utf-8")
        ).hexdigest()
        tree = self._memory.get(digest)
        if tree is not None:
            self.hits += 1
            return relpath, source, tree, None
        tree = self._disk_get(digest)
        if tree is not None:
            self.hits += 1
            self._memory[digest] = tree
            return relpath, source, tree, None
        self.misses += 1
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return relpath, source, None, f"syntax error: {exc.msg} (line {exc.lineno})"
        self._memory[digest] = tree
        self._disk_put(digest, tree)
        return relpath, source, tree, None

    def _disk_path(self, digest: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, digest[:2], digest + ".ast")

    def _disk_get(self, digest: str) -> Optional[ast.Module]:
        path = self._disk_path(digest)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                tree = pickle.load(fh)
            return tree if isinstance(tree, ast.Module) else None
        except Exception:
            return None

    def _disk_put(self, digest: str, tree: ast.Module) -> None:
        path = self._disk_path(digest)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as fh:
                pickle.dump(tree, fh, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            pass  # the disk layer is best-effort


def _parse_rule_list(raw: str) -> set:
    return {token.strip() for token in raw.split(",") if token.strip()}


def _file_suppressions(lines: Sequence[str]) -> set:
    suppressed = set()
    for line in lines:
        match = _SUPPRESS_FILE.search(line)
        if match:
            suppressed |= _parse_rule_list(match.group(1))
    return suppressed


def _line_suppressions(lines: Sequence[str], lineno: int) -> set:
    if not (1 <= lineno <= len(lines)):
        return set()
    match = _SUPPRESS_LINE.search(lines[lineno - 1])
    return _parse_rule_list(match.group(1)) if match else set()


def apply_suppressions(violations: Iterable[Violation], lines: Sequence[str]) -> List[Violation]:
    """Drop violations silenced by disable / disable-file comments."""
    file_level = _file_suppressions(lines)
    kept = []
    for violation in violations:
        silenced = file_level | _line_suppressions(lines, violation.line)
        if "all" in silenced or violation.rule in silenced:
            continue
        kept.append(violation)
    return kept


def _with_symbols(violations: List[Violation], ctx: FileContext) -> List[Violation]:
    """Fill in the enclosing symbol on findings that lack one."""
    out = []
    for violation in violations:
        if violation.symbol:
            out.append(violation)
            continue
        symbol = ctx.index.symbol_at_line(violation.line)
        out.append(
            Violation(
                violation.path, violation.line, violation.col,
                violation.rule, violation.message, symbol,
            )
        )
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    relpath: Optional[str] = None,
) -> List[Violation]:
    """Run every per-file AST rule over one source string."""
    from tools.reprolint.rules import ALL_RULES

    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=str(exc.msg),
            )
        ]
    ctx = FileContext(
        path=path,
        relpath=relpath if relpath is not None else _relative(path),
        source=source,
        tree=tree,
        config=config,
    )
    violations: List[Violation] = []
    for rule in ALL_RULES:
        violations.extend(rule.check(ctx))
    return apply_suppressions(_with_symbols(violations, ctx), ctx.lines)


def _relative(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return path.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str], config: LintConfig) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    found: List[str] = []
    for root in paths:
        if os.path.isfile(root):
            found.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git", ".pytest_cache"}
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    kept = []
    for path in dict.fromkeys(found):
        rel = _relative(path)
        if any(fnmatch.fnmatch(rel, pattern) for pattern in config.exclude):
            continue
        kept.append(path)
    return kept


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    contracts: Optional[bool] = None,
    interproc: Optional[bool] = None,
    cache: Optional[ASTCache] = None,
) -> List[Violation]:
    """Lint files/directories: per-file rules, contracts, interprocedural.

    The per-file rules run over exactly the files named by ``paths``;
    the interprocedural rules always analyze ``config.project_roots``
    (the whole-program model is meaningless on a partial file list).
    """
    from tools.reprolint.rules import ALL_RULES

    config = config or LintConfig()
    cache = cache or ASTCache()
    violations: List[Violation] = []
    for path in iter_python_files(paths, config):
        relpath, source, tree, error = cache.load(path)
        if tree is None:
            if error and error.startswith("syntax error"):
                violations.append(
                    Violation(path=path, line=1, col=0, rule="syntax-error",
                              message=error)
                )
            else:
                violations.append(
                    Violation(path=path, line=1, col=0, rule="io-error",
                              message=error or "unreadable")
                )
            continue
        ctx = FileContext(
            path=path, relpath=relpath, source=source, tree=tree, config=config,
        )
        file_violations: List[Violation] = []
        for rule in ALL_RULES:
            file_violations.extend(rule.check(ctx))
        violations.extend(
            apply_suppressions(_with_symbols(file_violations, ctx), ctx.lines)
        )
    run_contracts = config.contracts if contracts is None else contracts
    if run_contracts:
        from tools.reprolint.contracts import check_contracts

        violations.extend(check_contracts(config))
    run_interproc_rules = config.interproc if interproc is None else interproc
    if run_interproc_rules:
        violations.extend(run_whole_program(config, cache))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def build_project_model(config: LintConfig, cache: Optional[ASTCache] = None):
    """Build (and return) the whole-program model over project_roots."""
    from tools.reprolint.callgraph import build_project

    cache = cache or ASTCache()

    def parse(path: str):
        relpath, _source, tree, error = cache.load(path)
        return relpath, tree, error

    return build_project(config, parse)


def run_whole_program(
    config: LintConfig, cache: Optional[ASTCache] = None
) -> List[Violation]:
    """Interprocedural findings, suppression-filtered per source file."""
    from tools.reprolint.interproc import run_interproc

    cache = cache or ASTCache()
    project = build_project_model(config, cache)
    violations = run_interproc(project, config)
    # honor `# reprolint: disable=` comments at the flagged lines
    by_relpath: Dict[str, List[Violation]] = defaultdict(list)
    for violation in violations:
        by_relpath[violation.path].append(violation)
    kept: List[Violation] = []
    for relpath, group in by_relpath.items():
        try:
            with open(relpath, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            kept.extend(group)
            continue
        kept.extend(apply_suppressions(group, lines))
    return kept
