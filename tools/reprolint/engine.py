"""reprolint engine: file walking, suppression, rule orchestration.

Rules are pluggable: anything with a ``rule_id`` string and a
``check(ctx) -> Iterator[Violation]`` method.  AST rules run per file;
the registry contract checks (which import the package) run once per
invocation from :mod:`tools.reprolint.contracts`.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from tools.reprolint.config import LintConfig

_SUPPRESS_LINE = re.compile(r"#\s*reprolint:\s*disable=([\w\-,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*reprolint:\s*disable-file=([\w\-,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule finding, printable as ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    """Everything an AST rule needs about one file."""

    path: str
    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


def _parse_rule_list(raw: str) -> set:
    return {token.strip() for token in raw.split(",") if token.strip()}


def _file_suppressions(lines: Sequence[str]) -> set:
    suppressed = set()
    for line in lines:
        match = _SUPPRESS_FILE.search(line)
        if match:
            suppressed |= _parse_rule_list(match.group(1))
    return suppressed


def _line_suppressions(lines: Sequence[str], lineno: int) -> set:
    if not (1 <= lineno <= len(lines)):
        return set()
    match = _SUPPRESS_LINE.search(lines[lineno - 1])
    return _parse_rule_list(match.group(1)) if match else set()


def apply_suppressions(violations: Iterable[Violation], lines: Sequence[str]) -> List[Violation]:
    """Drop violations silenced by disable / disable-file comments."""
    file_level = _file_suppressions(lines)
    kept = []
    for violation in violations:
        silenced = file_level | _line_suppressions(lines, violation.line)
        if "all" in silenced or violation.rule in silenced:
            continue
        kept.append(violation)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    relpath: Optional[str] = None,
) -> List[Violation]:
    """Run every AST rule over one source string."""
    from tools.reprolint.rules import ALL_RULES

    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=str(exc.msg),
            )
        ]
    ctx = FileContext(
        path=path,
        relpath=relpath if relpath is not None else _relative(path),
        source=source,
        tree=tree,
        config=config,
    )
    violations: List[Violation] = []
    for rule in ALL_RULES:
        violations.extend(rule.check(ctx))
    return apply_suppressions(violations, ctx.lines)


def _relative(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return path.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str], config: LintConfig) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    found: List[str] = []
    for root in paths:
        if os.path.isfile(root):
            found.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git", ".pytest_cache"}
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    kept = []
    for path in dict.fromkeys(found):
        rel = _relative(path)
        if any(fnmatch.fnmatch(rel, pattern) for pattern in config.exclude):
            continue
        kept.append(path)
    return kept


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    contracts: Optional[bool] = None,
) -> List[Violation]:
    """Lint files/directories; optionally run the registry contract checks."""
    config = config or LintConfig()
    violations: List[Violation] = []
    for path in iter_python_files(paths, config):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            violations.append(
                Violation(path=path, line=1, col=0, rule="io-error", message=str(exc))
            )
            continue
        violations.extend(lint_source(source, path=path, config=config))
    run_contracts = config.contracts if contracts is None else contracts
    if run_contracts:
        from tools.reprolint.contracts import check_contracts

        violations.extend(check_contracts(config))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
